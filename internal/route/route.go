// Package route implements adaptive per-query method routing: a small
// cost model over the query-feature regimes of the paper's Section 5
// sweeps (interval extent, |q.d|, element frequency) picks the index
// family expected to answer a query fastest, and refines itself online
// from observed per-query timings. The engine already maintains
// multiple index builds cheaply via the generational store; the router
// decides which build serves each query.
package route

import (
	"math"
	"sync/atomic"
	"time"
)

// Class abstracts the index families for cost-model seeding, so the
// router stays independent of the root package's Method constants.
type Class uint8

// The eight families of the paper's evaluation.
const (
	ClassTIF Class = iota
	ClassSlicing
	ClassSharding
	ClassBinary
	ClassMerge
	ClassHybrid
	ClassPerf
	ClassSize
	NumClasses
)

// Features are the per-query regime coordinates of the Section 5
// sweeps: extent as a fraction of the data domain, description size,
// and the document-frequency fraction of the rarest query element.
type Features struct {
	ExtentFrac  float64
	NumElems    int
	MinFreqFrac float64
}

// Regime bucketing: the paper sweeps extent over {0.01%, 0.1%, 1%,
// 10%}, |q.d| over {1..5}, and element frequency over four bins; the
// router folds those into a 4 x 3 x 3 grid — coarse enough that every
// bucket accumulates observations quickly, fine enough to separate the
// regimes where different methods win.
const (
	numExtentBuckets = 4
	numElemsBuckets  = 3
	numFreqBuckets   = 3

	// NumBuckets is the size of the regime grid.
	NumBuckets = numExtentBuckets * numElemsBuckets * numFreqBuckets
)

func extentBucket(f float64) int {
	switch {
	case f <= 0.001:
		return 0
	case f <= 0.01:
		return 1
	case f <= 0.1:
		return 2
	default:
		return 3
	}
}

func elemsBucket(n int) int {
	switch {
	case n <= 1:
		return 0
	case n <= 3:
		return 1
	default:
		return 2
	}
}

func freqBucket(f float64) int {
	switch {
	case f < 0.001:
		return 0
	case f < 0.01:
		return 1
	default:
		return 2
	}
}

// BucketOf maps query features onto the regime grid.
//
// irlint:hot router decision path, runs once per routed query
func BucketOf(f Features) int {
	return (extentBucket(f.ExtentFrac)*numElemsBuckets+
		elemsBucket(f.NumElems))*numFreqBuckets + freqBucket(f.MinFreqFrac)
}

// PriorCost seeds the cost model from the paper's regime findings
// (Section 5.3-5.5, mirrored in the repo's BENCH_pr7 trajectory), in
// nanoseconds per query at the default benchmark scale. The absolute
// values only set the starting order within each bucket; online EWMA
// updates converge the table onto the deployment's real costs.
//
// The encoded regime knowledge: irHINT-perf is the overall winner;
// plain tIF wins when the rarest element is very infrequent (its
// postings lists are tiny, so Algorithm 1's merges beat any hierarchy
// overhead); slicing-based methods degrade as the extent grows (more
// slices touched, more replicas); the merge/hybrid tIF+HINT variants
// take over on large extents where candidate sets are dense.
func PriorCost(cl Class, eb, nb, fb int) float64 {
	// Base per-query cost from the measured single-thread trajectory.
	base := [NumClasses]float64{
		ClassTIF:      28e3,
		ClassSlicing:  30e3,
		ClassSharding: 240e3,
		ClassBinary:   60e3,
		ClassMerge:    36e3,
		ClassHybrid:   29e3,
		ClassPerf:     18e3,
		ClassSize:     80e3,
	}
	c := base[cl]
	// Large extents punish sliced/temporal-scan structures and favor
	// the merge/hybrid intersections over dense candidate sets.
	extent := float64(eb) // 0..3
	switch cl {
	case ClassSlicing:
		c *= 1 + 1.5*extent
	case ClassTIF, ClassSharding:
		c *= 1 + 0.8*extent
	case ClassBinary, ClassSize:
		c *= 1 + 0.5*extent
	case ClassMerge, ClassHybrid:
		c *= 1 + 0.2*extent
	case ClassPerf:
		c *= 1 + 0.4*extent
	}
	// Rare elements shrink postings lists: the flat tIF merge (and the
	// binary probe) get disproportionately cheap, per the frequency
	// sweep's crossover.
	if fb == 0 {
		switch cl {
		case ClassTIF:
			c *= 0.25
		case ClassBinary:
			c *= 0.5
		}
	}
	// Long conjunctions multiply per-element passes; hierarchy-backed
	// methods amortize them better than flat lists.
	if nb == 2 {
		switch cl {
		case ClassTIF, ClassSharding:
			c *= 1.5
		case ClassSlicing:
			c *= 1.3
		}
	}
	return c
}

// exploreEvery is the deterministic exploration period: every Nth
// decision in a bucket round-robins across the registered methods
// instead of exploiting the current argmin, so cost estimates of
// non-winning methods never go stale and no method starves forever.
// Deterministic (a per-bucket counter, no randomness) so routed results
// and tests stay reproducible.
const exploreEvery = 16

// ewmaAlpha is the online update weight: new observations move the
// estimate 20% of the way, smoothing scheduler noise while tracking
// workload drift within tens of queries.
const ewmaAlpha = 0.2

// Router is the adaptive cost model: one EWMA cost estimate per
// (regime bucket, method), refined online and consulted per query. All
// state is atomic — concurrent Choose/Observe calls need no locks.
type Router struct {
	names   []string
	cost    []atomic.Uint64 // [bucket*n + method] EWMA ns, float64 bits
	decided []atomic.Uint64 // per-method decision counts
	probe   []atomic.Uint64 // per-bucket decision counters (exploration clock)
}

// New builds a router over the named methods, seeding every bucket's
// cost estimates from the class priors. names and classes are parallel;
// only methods with a live build may be registered — Choose never
// returns an index outside [0, len(names)).
func New(names []string, classes []Class) *Router {
	n := len(names)
	r := &Router{
		names:   append([]string(nil), names...),
		cost:    make([]atomic.Uint64, NumBuckets*n),
		decided: make([]atomic.Uint64, n),
		probe:   make([]atomic.Uint64, NumBuckets),
	}
	for eb := 0; eb < numExtentBuckets; eb++ {
		for nb := 0; nb < numElemsBuckets; nb++ {
			for fb := 0; fb < numFreqBuckets; fb++ {
				b := (eb*numElemsBuckets+nb)*numFreqBuckets + fb
				for i, cl := range classes {
					r.cost[b*n+i].Store(math.Float64bits(PriorCost(cl, eb, nb, fb)))
				}
			}
		}
	}
	return r
}

// Methods returns the registered method names in decision-index order.
func (r *Router) Methods() []string { return append([]string(nil), r.names...) }

// Choose picks the method index for a query with the given features:
// the per-bucket argmin of the cost estimates, except that every
// exploreEvery-th decision in the bucket round-robins deterministically
// so estimates stay fresh. The returned index is always a registered
// method.
//
// irlint:hot router decision path, runs once per routed query
func (r *Router) Choose(f Features) int {
	n := len(r.names)
	if n == 1 {
		r.decided[0].Add(1)
		return 0
	}
	b := BucketOf(f)
	k := r.probe[b].Add(1)
	if k%exploreEvery == 0 {
		mi := int(k/exploreEvery) % n
		r.decided[mi].Add(1)
		return mi
	}
	base := b * n
	best, bestCost := 0, math.Float64frombits(r.cost[base].Load())
	for i := 1; i < n; i++ {
		if c := math.Float64frombits(r.cost[base+i].Load()); c < bestCost {
			best, bestCost = i, c
		}
	}
	r.decided[best].Add(1)
	return best
}

// Observe folds one measured query duration into the (bucket, method)
// cost estimate. A lost CAS race drops the sample — the estimate is a
// smoothed approximation, not an accounting ledger.
//
// irlint:hot router cost update, runs once per routed query
func (r *Router) Observe(mi int, f Features, d time.Duration) {
	if mi < 0 || mi >= len(r.names) {
		return
	}
	slot := &r.cost[BucketOf(f)*len(r.names)+mi]
	old := slot.Load()
	next := math.Float64frombits(old) + ewmaAlpha*(float64(d.Nanoseconds())-math.Float64frombits(old))
	slot.CompareAndSwap(old, math.Float64bits(next))
}

// Cost returns the current estimate for (bucket, method) — test and
// introspection surface, not the hot path.
func (r *Router) Cost(bucket, mi int) float64 {
	return math.Float64frombits(r.cost[bucket*len(r.names)+mi].Load())
}

// Decisions returns how many queries were routed to method mi.
func (r *Router) Decisions(mi int) uint64 {
	if mi < 0 || mi >= len(r.decided) {
		return 0
	}
	return r.decided[mi].Load()
}

// DecisionTotal returns the total routed decision count.
func (r *Router) DecisionTotal() uint64 {
	var total uint64
	for i := range r.decided {
		total += r.decided[i].Load()
	}
	return total
}
