package route

import (
	"testing"
	"time"

	"repro/internal/allocbudget"
)

// TestAllocBudget pins the router's per-query decision path at zero
// allocations: feature bucketing, the cost-table argmin and the EWMA
// observation are all atomics over pre-sized slices. `make benchmem`
// re-records.
func TestAllocBudget(t *testing.T) {
	names := []string{"tif", "tif+hint/merge", "tif+hint+slicing", "irhint/perf"}
	classes := []Class{ClassTIF, ClassMerge, ClassHybrid, ClassPerf}
	r := New(names, classes)

	allocbudget.Gate(t, "route/Router.Choose", func(b *testing.B) {
		f := Features{ExtentFrac: 0.001, NumElems: 3, MinFreqFrac: 0.005}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = r.Choose(f)
		}
	})

	allocbudget.Gate(t, "route/Router.Observe", func(b *testing.B) {
		f := Features{ExtentFrac: 0.001, NumElems: 3, MinFreqFrac: 0.005}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Observe(i%len(names), f, time.Duration(i)*time.Nanosecond)
		}
	})
}
