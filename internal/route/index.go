package route

import (
	"time"

	"repro/internal/exec"
	"repro/internal/model"
)

// Subindex is the surface the router needs from each routed build —
// structurally identical to the root package's Index interface, so any
// family member plugs in without adapters.
type Subindex interface {
	Query(q model.Query) []model.ObjectID
	Insert(o model.Object)
	Delete(o model.Object)
	Len() int
	SizeBytes() int64
}

// parallelSub mirrors maint.ParallelIndex for sub-builds that support
// intra-query fan-out.
type parallelSub interface {
	QueryP(q model.Query, pool *exec.Pool) []model.ObjectID
}

// Index answers every query through the sub-build the router's cost
// model picks for the query's feature bucket, and feeds the observed
// duration back into the model. Updates fan out to every sub-build, so
// all of them stay complete answers and routing is purely a performance
// decision — result sets are identical whichever build serves.
type Index struct {
	router *Router
	names  []string
	subs   []Subindex
	par    []parallelSub // par[i] non-nil iff subs[i] fans out
	freqs  []int         // live postings per element, for MinFreqFrac
	span   float64       // data-domain width fixed at build time
}

// NewIndex wires named sub-builds (parallel to classes) into a routed
// index over the collection they were built from. The feature extractor
// snapshots the collection's element frequencies and temporal span;
// frequencies track subsequent updates, the span stays fixed until the
// next rebuild (compaction re-derives it).
func NewIndex(names []string, classes []Class, subs []Subindex, c *model.Collection) *Index {
	ix := &Index{
		router: New(names, classes),
		names:  append([]string(nil), names...),
		subs:   subs,
		par:    make([]parallelSub, len(subs)),
		freqs:  c.ElemFreqs(),
		span:   1,
	}
	for i, s := range subs {
		if p, ok := s.(parallelSub); ok {
			ix.par[i] = p
		}
	}
	if iv, ok := c.Span(); ok {
		ix.span = float64(iv.End-iv.Start) + 1
	}
	return ix
}

// Router exposes the cost model (decision counts, estimates).
func (ix *Index) Router() *Router { return ix.router }

// Methods returns the sub-method names in decision-index order.
func (ix *Index) Methods() []string { return append([]string(nil), ix.names...) }

// AdoptRouter replaces the freshly seeded router with a predecessor's,
// carrying learned cost estimates and decision counts across a
// compaction rebuild. It must run before the index is published for
// reads (the engine's build hook calls it pre-swap); routers only
// transfer between indexes routing the same method list.
func (ix *Index) AdoptRouter(r *Router) {
	if r != nil && len(r.names) == len(ix.subs) {
		ix.router = r
	}
}

// features extracts the query's regime coordinates. MinFreqFrac uses
// the tracked per-element live frequencies over the current live count;
// unknown elements count as frequency zero (the query returns nothing
// fast, whichever method runs).
//
// irlint:hot routed feature extraction, runs once per routed query
func (ix *Index) features(q model.Query) Features {
	f := Features{
		NumElems:   len(q.Elems),
		ExtentFrac: (float64(q.Interval.End-q.Interval.Start) + 1) / ix.span,
	}
	if live := ix.subs[0].Len(); live > 0 && len(q.Elems) > 0 {
		min := live
		for _, e := range q.Elems {
			fr := 0
			if int(e) < len(ix.freqs) {
				fr = ix.freqs[e]
			}
			if fr < min {
				min = fr
			}
		}
		f.MinFreqFrac = float64(min) / float64(live)
	}
	return f
}

// Query routes the query to the chosen sub-build, times it, and folds
// the observation back into the cost model. The routing decision is
// recorded on the query's trace when one is attached.
func (ix *Index) Query(q model.Query) []model.ObjectID {
	f := ix.features(q)
	mi := ix.router.Choose(f)
	start := time.Now()
	ids := ix.subs[mi].Query(q)
	ix.router.Observe(mi, f, time.Since(start))
	q.Trace.SetRoute(ix.names[mi])
	return ids
}

// QueryP is Query with intra-query parallelism when the chosen
// sub-build supports it, satisfying maint.ParallelIndex so routed
// engines keep batch fan-out.
func (ix *Index) QueryP(q model.Query, pool *exec.Pool) []model.ObjectID {
	f := ix.features(q)
	mi := ix.router.Choose(f)
	start := time.Now()
	var ids []model.ObjectID
	if p := ix.par[mi]; p != nil && pool != nil {
		ids = p.QueryP(q, pool)
	} else {
		ids = ix.subs[mi].Query(q)
	}
	ix.router.Observe(mi, f, time.Since(start))
	q.Trace.SetRoute(ix.names[mi])
	return ids
}

// Insert adds the object to every sub-build (routing must never change
// result sets) and tracks element frequencies for feature extraction.
func (ix *Index) Insert(o model.Object) {
	for _, s := range ix.subs {
		s.Insert(o)
	}
	for _, e := range o.Elems {
		for len(ix.freqs) <= int(e) {
			ix.freqs = append(ix.freqs, 0)
		}
		ix.freqs[e]++
	}
}

// Delete tombstones the object in every sub-build.
func (ix *Index) Delete(o model.Object) {
	before := ix.subs[0].Len()
	for _, s := range ix.subs {
		s.Delete(o)
	}
	if ix.subs[0].Len() == before {
		return // unknown or already-dead object: frequencies unchanged
	}
	for _, e := range o.Elems {
		if int(e) < len(ix.freqs) && ix.freqs[e] > 0 {
			ix.freqs[e]--
		}
	}
}

// Len returns the live object count (identical across sub-builds).
func (ix *Index) Len() int { return ix.subs[0].Len() }

// SizeBytes sums the resident size of every sub-build — the honest cost
// of keeping multiple builds to route across.
func (ix *Index) SizeBytes() int64 {
	var total int64
	for _, s := range ix.subs {
		total += s.SizeBytes()
	}
	return total + int64(len(ix.freqs))*8
}
