package route

import (
	"sync"
	"testing"
	"time"
)

// defaultLineup mirrors the root package's DefaultRoutedMethods.
func defaultLineup() ([]string, []Class) {
	return []string{"tif", "tif+hint/merge", "tif+hint+slicing", "irhint/perf"},
		[]Class{ClassTIF, ClassMerge, ClassHybrid, ClassPerf}
}

// TestGoldenDecisions pins the prior-seeded routing table: for each
// regime of the paper's Section 5 sweeps, a fresh router (no
// observations yet) must pick the method the priors encode. The first
// decision in a bucket is never an exploration tick, so these are pure
// cost-model argmins.
func TestGoldenDecisions(t *testing.T) {
	names, classes := defaultLineup()
	golden := []struct {
		name string
		f    Features
		want string
	}{
		// The paper's default workload: small extent, |q.d|=3,
		// mid-frequency elements — irHINT-perf is the overall winner.
		{"default", Features{ExtentFrac: 0.001, NumElems: 3, MinFreqFrac: 0.005}, "irhint/perf"},
		// Very rare elements: postings lists are tiny, the flat tIF's
		// plain merge beats every hierarchy.
		{"rare-elements", Features{ExtentFrac: 0.001, NumElems: 2, MinFreqFrac: 0.0001}, "tif"},
		// Large extent, frequent elements: still irHINT-perf under the
		// default priors (its extent penalty is mild).
		{"large-extent-dense", Features{ExtentFrac: 0.5, NumElems: 3, MinFreqFrac: 0.05}, "irhint/perf"},
		// Large extent AND rare elements: the tIF discount dominates.
		{"large-extent-rare", Features{ExtentFrac: 0.5, NumElems: 1, MinFreqFrac: 0.0005}, "tif"},
	}
	for _, g := range golden {
		r := New(names, classes)
		mi := r.Choose(g.f)
		if names[mi] != g.want {
			t.Errorf("%s: routed to %s, want %s (features %+v)", g.name, names[mi], g.want, g.f)
		}
	}
}

// TestObserveConvergence checks the online update overrides the priors:
// feed consistently fast observations for a prior-disfavored method and
// the router must switch to it in that bucket (and only that bucket).
func TestObserveConvergence(t *testing.T) {
	names, classes := defaultLineup()
	r := New(names, classes)
	f := Features{ExtentFrac: 0.001, NumElems: 3, MinFreqFrac: 0.005}
	other := Features{ExtentFrac: 0.5, NumElems: 1, MinFreqFrac: 0.5}
	merge := 1 // tif+hint/merge: base prior 36e3, never the default winner
	for i := 0; i < 50; i++ {
		r.Observe(merge, f, 1*time.Microsecond)
	}
	// Observe does not advance the exploration clock, so the first
	// Choose in the bucket is a pure argmin of the trained table.
	if mi := r.Choose(f); names[mi] != "tif+hint/merge" {
		t.Fatalf("after training, routed to %s, want tif+hint/merge", names[mi])
	}
	if mi := r.Choose(other); names[mi] == "tif+hint/merge" {
		t.Fatalf("training leaked into an unrelated bucket")
	}
}

// TestNoStarvation: the deterministic exploration ticks guarantee every
// registered method keeps receiving decisions, and Choose never returns
// an index outside the registered range (no routing to an absent
// build), no matter how skewed the cost table gets.
func TestNoStarvation(t *testing.T) {
	names, classes := defaultLineup()
	r := New(names, classes)
	f := Features{ExtentFrac: 0.001, NumElems: 3, MinFreqFrac: 0.005}
	// Skew hard: one method is made to look infinitely better.
	for i := 0; i < 100; i++ {
		r.Observe(3, f, time.Nanosecond)
		r.Observe(0, f, time.Hour)
		r.Observe(1, f, time.Hour)
		r.Observe(2, f, time.Hour)
	}
	total := 4 * exploreEvery * len(names)
	for i := 0; i < total; i++ {
		mi := r.Choose(f)
		if mi < 0 || mi >= len(names) {
			t.Fatalf("Choose returned out-of-range index %d", mi)
		}
	}
	for i := range names {
		if r.Decisions(i) == 0 {
			t.Errorf("method %s starved over %d decisions", names[i], total)
		}
	}
	if got := r.DecisionTotal(); got != uint64(total) {
		t.Fatalf("DecisionTotal = %d, want %d", got, total)
	}
}

// TestSingleMethod: a one-method router short-circuits but still
// tallies.
func TestSingleMethod(t *testing.T) {
	r := New([]string{"tif"}, []Class{ClassTIF})
	for i := 0; i < 5; i++ {
		if mi := r.Choose(Features{}); mi != 0 {
			t.Fatalf("Choose = %d, want 0", mi)
		}
	}
	if r.Decisions(0) != 5 {
		t.Fatalf("Decisions = %d, want 5", r.Decisions(0))
	}
}

// TestBucketGrid sanity-checks the regime grid: every feature corner
// maps into [0, NumBuckets) and the axes are monotone.
func TestBucketGrid(t *testing.T) {
	fs := []Features{
		{}, {ExtentFrac: 1, NumElems: 10, MinFreqFrac: 1},
		{ExtentFrac: 0.0005}, {ExtentFrac: 0.005}, {ExtentFrac: 0.05},
		{NumElems: 1}, {NumElems: 3}, {NumElems: 5},
		{MinFreqFrac: 0.0001}, {MinFreqFrac: 0.005}, {MinFreqFrac: 0.5},
	}
	seen := map[int]bool{}
	for _, f := range fs {
		b := BucketOf(f)
		if b < 0 || b >= NumBuckets {
			t.Fatalf("BucketOf(%+v) = %d, out of range", f, b)
		}
		seen[b] = true
	}
	if len(seen) < 5 {
		t.Fatalf("bucket grid too coarse: %d distinct buckets over the corners", len(seen))
	}
	if lo, hi := BucketOf(Features{ExtentFrac: 0.0001}), BucketOf(Features{ExtentFrac: 0.9}); lo >= hi {
		t.Fatalf("extent axis not monotone: %d >= %d", lo, hi)
	}
}

// TestConcurrentChooseObserve hammers the router from many goroutines
// under the race detector: atomics only, and the decision tally must
// account for every Choose.
func TestConcurrentChooseObserve(t *testing.T) {
	names, classes := defaultLineup()
	r := New(names, classes)
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := Features{ExtentFrac: float64(w) / workers, NumElems: w % 5, MinFreqFrac: 0.01}
			for i := 0; i < perWorker; i++ {
				mi := r.Choose(f)
				r.Observe(mi, f, time.Duration(i+1)*time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.DecisionTotal(); got != workers*perWorker {
		t.Fatalf("DecisionTotal = %d, want %d", got, workers*perWorker)
	}
	for b := 0; b < NumBuckets; b++ {
		for i := range names {
			if c := r.Cost(b, i); c <= 0 {
				t.Fatalf("cost[%d][%d] = %v, want positive", b, i, c)
			}
		}
	}
}

// TestObserveIgnoresBadIndex: out-of-range observations are dropped.
func TestObserveIgnoresBadIndex(t *testing.T) {
	r := New([]string{"tif"}, []Class{ClassTIF})
	r.Observe(-1, Features{}, time.Second)
	r.Observe(5, Features{}, time.Second)
	if got := r.Cost(0, 0); got != PriorCost(ClassTIF, 0, 0, 0) {
		t.Fatalf("bad-index Observe mutated the table: %v", got)
	}
}
