package tifhint

import (
	"sort"

	"repro/internal/dict"
	"repro/internal/domain"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/postings"
)

// slicePair is one entry of the hybrid's second copy: the object id plus
// only its start timestamp — enough for the reference-value
// de-duplication, as Section 3.2 observes (intersections after the first
// element need no temporal predicate).
type slicePair struct {
	ID    model.ObjectID
	Start model.Timestamp
}

// HybridIndex is tIF+HINT+Slicing (Section 3.2): each postings list is
// stored twice. An id-sorted HINT answers the first element's range query
// with full partition pruning; a sliced copy of <id, t_st> pairs serves
// the remaining intersections over far fewer, coarser fragments than the
// HINT divisions would, avoiding the fragmentation that hurts MergeIndex
// on multi-element queries.
type HybridIndex struct {
	shared    domain.Domain
	hints     []*idHint
	slices    [][][]slicePair // [elem][slice], id-sorted
	freqs     []int
	numSlices int
	lo, hi    model.Timestamp
	width     int64
	live      int
	m         int
}

// DefaultHybridSlices matches the tuned tIF+Slicing configuration.
const DefaultHybridSlices = 50

// NewHybrid builds the dual-copy hybrid.
func NewHybrid(c *model.Collection, opts ...Option) *HybridIndex {
	cfg := config{m: DefaultMergeM, numSlices: DefaultHybridSlices}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.costModel {
		cfg.m = costModelM(c, 20)
	}
	span, ok := c.Span()
	if !ok {
		span = model.NewInterval(0, 0)
	}
	ix := &HybridIndex{
		hints:     make([]*idHint, c.DictSize),
		slices:    make([][][]slicePair, c.DictSize),
		freqs:     make([]int, c.DictSize),
		numSlices: cfg.numSlices,
		lo:        span.Start,
		hi:        span.End,
		m:         cfg.m,
	}
	ix.width = (int64(span.End-span.Start) + int64(cfg.numSlices)) / int64(cfg.numSlices)
	if ix.width < 1 {
		ix.width = 1
	}
	ix.shared = sharedDomain(c, cfg.m)
	for i := range c.Objects {
		ix.place(&c.Objects[i])
	}
	ix.live = len(c.Objects)
	return ix
}

func (ix *HybridIndex) sliceOf(t model.Timestamp) int {
	if t <= ix.lo {
		return 0
	}
	s := int(int64(t-ix.lo) / ix.width)
	if s >= ix.numSlices {
		return ix.numSlices - 1
	}
	return s
}

func (ix *HybridIndex) place(o *model.Object) {
	p := postings.Posting{ID: o.ID, Interval: o.Interval}
	first, last := ix.sliceOf(o.Interval.Start), ix.sliceOf(o.Interval.End)
	for _, e := range o.Elems {
		ix.growTo(int(e) + 1)
		if ix.hints[e] == nil {
			ix.hints[e] = newIDHint(ix.shared)
			ix.slices[e] = make([][]slicePair, ix.numSlices)
		}
		ix.hints[e].insert(p)
		for s := first; s <= last; s++ {
			ix.slices[e][s] = insertPairByID(ix.slices[e][s], slicePair{ID: o.ID, Start: o.Interval.Start})
		}
		ix.freqs[e]++
	}
}

func insertPairByID(s []slicePair, p slicePair) []slicePair {
	if n := len(s); n == 0 || s[n-1].ID < p.ID {
		return append(s, p)
	}
	i := sort.Search(len(s), func(i int) bool { return s[i].ID > p.ID })
	s = append(s, slicePair{})
	copy(s[i+1:], s[i:])
	s[i] = p
	return s
}

// Insert adds one object to both copies.
func (ix *HybridIndex) Insert(o model.Object) {
	ix.place(&o)
	ix.live++
}

// deadStart marks deleted slice entries; it maps into the last slice, which
// is harmless because a candidate id can only collide with its own (live)
// entries — see the package tests.
const deadStart = model.Timestamp(1<<63 - 1)

// Delete tombstones the object's entries in both copies.
func (ix *HybridIndex) Delete(o model.Object) {
	p := postings.Posting{ID: o.ID, Interval: o.Interval}
	first, last := ix.sliceOf(o.Interval.Start), ix.sliceOf(o.Interval.End)
	found := false
	for _, e := range o.Elems {
		if int(e) >= len(ix.hints) || ix.hints[e] == nil {
			continue
		}
		if ix.hints[e].delete(p) {
			ix.freqs[e]--
			found = true
		}
		for s := first; s <= last; s++ {
			sub := ix.slices[e][s]
			i := sort.Search(len(sub), func(i int) bool { return sub[i].ID >= o.ID })
			if i < len(sub) && sub[i].ID == o.ID {
				sub[i].Start = deadStart
			}
		}
	}
	if found {
		ix.live--
	}
}

func (ix *HybridIndex) growTo(n int) {
	for len(ix.hints) < n {
		ix.hints = append(ix.hints, nil)
		ix.slices = append(ix.slices, nil)
		ix.freqs = append(ix.freqs, 0)
	}
}

// Len returns the number of live objects.
func (ix *HybridIndex) Len() int { return ix.live }

// M returns the grid bits in use.
func (ix *HybridIndex) M() int { return ix.m }

// NumSlices returns the slice count of the second copy.
func (ix *HybridIndex) NumSlices() int { return ix.numSlices }

// Query evaluates the hybrid plan: HINT range query on the least frequent
// element, then sliced merge intersections with reference-value
// de-duplication for the rest.
//
// irlint:hot tIF+HINT+Slicing per-query entry point
func (ix *HybridIndex) Query(q model.Query) []model.ObjectID {
	if len(q.Elems) == 0 {
		return ix.queryTemporalOnly(q)
	}
	plan := dict.PlanOrder(q.Elems, ix.freqs)
	first := plan[0]
	if int(first) >= len(ix.hints) || ix.hints[first] == nil {
		return nil
	}
	cands := ix.hints[first].seed(q, nil)
	if len(plan) == 1 {
		return cands
	}
	return ix.intersectSlices(q, plan, cands, nil)
}

func (ix *HybridIndex) queryTemporalOnly(q model.Query) []model.ObjectID {
	defer q.Trace.StartStage(obs.StagePostings).End()
	var out []model.ObjectID
	for _, h := range ix.hints {
		if h != nil {
			out = h.rangeQuery(q.Interval, out)
		}
	}
	model.SortIDs(out)
	return model.DedupIDs(out)
}

// SizeBytes sums both copies: the HINTs plus the 12-byte slice pairs.
func (ix *HybridIndex) SizeBytes() int64 {
	var total int64
	for e := range ix.hints {
		if ix.hints[e] != nil {
			total += ix.hints[e].sizeBytes()
		}
		for s := range ix.slices[e] {
			total += int64(cap(ix.slices[e][s]))*12 + 24
		}
	}
	return total + int64(len(ix.freqs))*8
}

// EntryCount counts entries in both copies.
func (ix *HybridIndex) EntryCount() int64 {
	var total int64
	for e := range ix.hints {
		if ix.hints[e] != nil {
			total += ix.hints[e].entryCount()
		}
		for s := range ix.slices[e] {
			total += int64(len(ix.slices[e][s]))
		}
	}
	return total
}
