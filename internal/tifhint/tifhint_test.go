package tifhint

import (
	"testing"

	"repro/internal/model"
	"repro/internal/testutil"
)

func runningExample() *model.Collection {
	var c model.Collection
	c.AppendObject(model.Interval{Start: 10, End: 15}, []model.ElemID{0, 1, 2}) // o1
	c.AppendObject(model.Interval{Start: 2, End: 5}, []model.ElemID{0, 2})      // o2
	c.AppendObject(model.Interval{Start: 0, End: 2}, []model.ElemID{1})         // o3
	c.AppendObject(model.Interval{Start: 0, End: 15}, []model.ElemID{0, 1, 2})  // o4
	c.AppendObject(model.Interval{Start: 3, End: 7}, []model.ElemID{1, 2})      // o5
	c.AppendObject(model.Interval{Start: 2, End: 11}, []model.ElemID{2})        // o6
	c.AppendObject(model.Interval{Start: 4, End: 14}, []model.ElemID{0, 2})     // o7
	c.AppendObject(model.Interval{Start: 2, End: 3}, []model.ElemID{2})         // o8
	return &c
}

var exampleQuery = model.Query{Interval: model.Interval{Start: 4, End: 6}, Elems: []model.ElemID{0, 2}}
var exampleWant = []model.ObjectID{1, 3, 6}

// builders enumerates all three variants so every test covers each.
var builders = []struct {
	name  string
	build func(c *model.Collection, opts ...Option) testutil.UpdatableIndex
}{
	{"binary", func(c *model.Collection, opts ...Option) testutil.UpdatableIndex { return NewBinary(c, opts...) }},
	{"merge", func(c *model.Collection, opts ...Option) testutil.UpdatableIndex { return NewMerge(c, opts...) }},
	{"hybrid", func(c *model.Collection, opts ...Option) testutil.UpdatableIndex { return NewHybrid(c, opts...) }},
}

func TestRunningExampleAllVariants(t *testing.T) {
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			// m = 3 matches the Figure 5 illustration.
			ix := b.build(runningExample(), WithM(3))
			got := testutil.Canonical(ix.Query(exampleQuery))
			if !model.EqualIDs(got, exampleWant) {
				t.Errorf("got %v, want %v", got, exampleWant)
			}
		})
	}
}

func TestSingleElementQueries(t *testing.T) {
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			ix := b.build(runningExample(), WithM(3))
			got := testutil.Canonical(ix.Query(model.Query{
				Interval: model.Interval{Start: 0, End: 3},
				Elems:    []model.ElemID{2},
			}))
			want := []model.ObjectID{1, 3, 4, 5, 7} // o2, o4, o5, o6, o8
			if !model.EqualIDs(got, want) {
				t.Errorf("got %v, want %v", got, want)
			}
		})
	}
}

func TestUnknownElement(t *testing.T) {
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			ix := b.build(runningExample(), WithM(3))
			if got := ix.Query(model.Query{Interval: model.Interval{Start: 0, End: 15}, Elems: []model.ElemID{9}}); len(got) != 0 {
				t.Errorf("unknown element returned %v", got)
			}
			if got := ix.Query(model.Query{Interval: model.Interval{Start: 0, End: 15}, Elems: []model.ElemID{0, 9}}); len(got) != 0 {
				t.Errorf("conjunction with unknown element returned %v", got)
			}
		})
	}
}

func TestOracleEquivalenceAcrossM(t *testing.T) {
	for _, b := range builders {
		for _, m := range []int{1, 3, 5, 8, 12} {
			for seed := int64(0); seed < 3; seed++ {
				cfg := testutil.DefaultConfig(seed)
				c := testutil.RandomCollection(cfg)
				ix := b.build(c, WithM(m))
				testutil.CheckAgainstOracle(t, b.name, ix, c,
					testutil.RandomQueries(cfg, 120, seed+int64(m)*13))
			}
		}
	}
}

func TestUpdatesAllVariants(t *testing.T) {
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			cfg := testutil.DefaultConfig(41)
			testutil.CheckUpdates(t, b.name, func(c *model.Collection) testutil.UpdatableIndex {
				return b.build(c, WithM(6))
			}, cfg)
		})
	}
}

func TestCostModelOption(t *testing.T) {
	cfg := testutil.DefaultConfig(4)
	c := testutil.RandomCollection(cfg)
	ix := NewMerge(c, WithCostModelM())
	if ix.M() < 1 {
		t.Errorf("cost-model m = %d", ix.M())
	}
	testutil.CheckAgainstOracle(t, "merge+costmodel", ix, c, testutil.RandomQueries(cfg, 80, 5))
}

func TestTemporalOnlyQueries(t *testing.T) {
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			ix := b.build(runningExample(), WithM(3))
			got := ix.Query(model.Query{Interval: model.Interval{Start: 0, End: 0}})
			want := []model.ObjectID{2, 3}
			if !model.EqualIDs(got, want) {
				t.Errorf("got %v, want %v", got, want)
			}
		})
	}
}

func TestSizeAccounting(t *testing.T) {
	c := testutil.RandomCollection(testutil.DefaultConfig(6))
	bin := NewBinary(c, WithM(6))
	mrg := NewMerge(c, WithM(6))
	hyb := NewHybrid(c, WithM(6), WithSlices(10))
	for name, sz := range map[string]int64{
		"binary": bin.SizeBytes(), "merge": mrg.SizeBytes(), "hybrid": hyb.SizeBytes(),
	} {
		if sz <= 0 {
			t.Errorf("%s SizeBytes = %d", name, sz)
		}
	}
	// The hybrid stores two copies, so it must dominate the merge variant
	// at equal m (Table 5's ordering).
	if hyb.SizeBytes() <= mrg.SizeBytes() {
		t.Errorf("hybrid (%d) should exceed merge (%d)", hyb.SizeBytes(), mrg.SizeBytes())
	}
	if bin.EntryCount() != mrg.EntryCount() {
		t.Errorf("binary and merge at equal m must store equal entries: %d vs %d",
			bin.EntryCount(), mrg.EntryCount())
	}
	if hyb.EntryCount() <= mrg.EntryCount() {
		t.Error("hybrid EntryCount should include the slice copy")
	}
}

func TestHybridSliceConfig(t *testing.T) {
	c := runningExample()
	ix := NewHybrid(c, WithM(3), WithSlices(4))
	if ix.NumSlices() != 4 {
		t.Errorf("NumSlices = %d", ix.NumSlices())
	}
	got := testutil.Canonical(ix.Query(exampleQuery))
	if !model.EqualIDs(got, exampleWant) {
		t.Errorf("got %v, want %v", got, exampleWant)
	}
}

func TestHybridManyElements(t *testing.T) {
	// Queries with |q.d| > 2 exercise repeated keep-mask compaction.
	ix := NewHybrid(runningExample(), WithM(3), WithSlices(4))
	got := testutil.Canonical(ix.Query(model.Query{
		Interval: model.Interval{Start: 0, End: 15},
		Elems:    []model.ElemID{0, 1, 2},
	}))
	want := []model.ObjectID{0, 3} // o1 and o4 contain all of a,b,c
	if !model.EqualIDs(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestInsertBeyondDomainAllVariants(t *testing.T) {
	// Late insertions past the build-time span are clamped onto the last
	// grid cells; real-endpoint comparisons must keep results exact.
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			ix := b.build(runningExample(), WithM(3))
			ix.Insert(model.Object{ID: 8, Interval: model.Interval{Start: 14, End: 99}, Elems: []model.ElemID{0}})
			ix.Insert(model.Object{ID: 9, Interval: model.Interval{Start: 200, End: 300}, Elems: []model.ElemID{0}})
			got := testutil.Canonical(ix.Query(model.Query{
				Interval: model.Interval{Start: 50, End: 60}, Elems: []model.ElemID{0},
			}))
			if !model.EqualIDs(got, []model.ObjectID{8}) {
				t.Errorf("got %v, want [8]", got)
			}
			got = testutil.Canonical(ix.Query(model.Query{
				Interval: model.Interval{Start: 250, End: 260}, Elems: []model.ElemID{0},
			}))
			if !model.EqualIDs(got, []model.ObjectID{9}) {
				t.Errorf("got %v, want [9]", got)
			}
			// Each reported once on a covering query.
			got = testutil.Canonical(ix.Query(model.Query{
				Interval: model.Interval{Start: 0, End: 400}, Elems: []model.ElemID{0},
			}))
			want := []model.ObjectID{0, 1, 3, 6, 8, 9}
			if !model.EqualIDs(got, want) {
				t.Errorf("got %v, want %v", got, want)
			}
		})
	}
}

func TestMergeVariantLargerM(t *testing.T) {
	// Deep grids fragment divisions; results must not change.
	cfg := testutil.DefaultConfig(8)
	c := testutil.RandomCollection(cfg)
	shallow := NewMerge(c, WithM(2))
	deep := NewMerge(c, WithM(11))
	for i, q := range testutil.RandomQueries(cfg, 150, 77) {
		a := testutil.Canonical(shallow.Query(q))
		b := testutil.Canonical(deep.Query(q))
		if !model.EqualIDs(a, b) {
			t.Fatalf("query %d: shallow %v != deep %v", i, a, b)
		}
	}
}
