package tifhint

import (
	"repro/internal/dict"
	"repro/internal/exec"
	"repro/internal/hint"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/postings"
)

// Parallel query paths for the three tIF+HINT composites. Each QueryP
// answers exactly the same id set as Query — only the output order may
// differ, because the intra-query fan-out interleaves partition chunks.
// The de-duplication arguments are unchanged from the serial paths:
// HINT's assignment reports each interval once across relevant
// partitions, and the keep-mask intersections are idempotent, so OR-ing
// per-chunk masks preserves the reference-value de-dup.

// parallelCutoff is the minimum fan-out width (relevant partitions,
// slices, or postings lists) worth paying chunk bookkeeping for.
const parallelCutoff = 8

// parallelMinPer is the smallest per-chunk unit count.
const parallelMinPer = 2

// idRelevant pairs a relevant id-sorted partition with its obligations.
type idRelevant struct {
	p  *idPart
	ob hint.Obligations
}

func (h *idHint) relevant(q model.Interval, dst []idRelevant) []idRelevant {
	hint.Visit(h.dom, q, func(lv hint.LevelVisit) {
		h.levels[lv.Level].forRange(lv.F, lv.L, func(j uint32, p *idPart) {
			dst = append(dst, idRelevant{p: p, ob: lv.Oblige(j)})
		})
	})
	return dst
}

func scanRelevant(parts []idRelevant, q model.Interval, dst []model.ObjectID) []model.ObjectID {
	for _, rp := range parts {
		dst = scanDivision(rp.p.o, rp.ob.CheckStart, rp.ob.CheckEnd, q, dst)
		if rp.ob.First {
			dst = scanDivision(rp.p.r, rp.ob.CheckStart, false, q, dst)
		}
	}
	return dst
}

// rangeQueryParallel fans the division scans of rangeQuery across the
// pool. Ids stay duplicate-free; order is nondeterministic.
//
// irlint:cold opt-in parallel fan-out; per-chunk buffers are the cost of concurrency, not the serial query path
func (h *idHint) rangeQueryParallel(q model.Interval, pool *exec.Pool, dst []model.ObjectID) []model.ObjectID {
	parts := h.relevant(q, nil)
	if pool == nil || pool.Workers() <= 1 || len(parts) < parallelCutoff {
		return scanRelevant(parts, q, dst)
	}
	partials := exec.MapChunks(pool, len(parts), parallelMinPer, func(lo, hi int) []model.ObjectID {
		return scanRelevant(parts[lo:hi], q, nil)
	})
	for _, b := range partials {
		dst = append(dst, b...)
	}
	return dst
}

// intersectParallel is intersect with the per-division merges fanned
// across the pool: each chunk marks matches into its own mask, and the
// masks are OR-ed before the compaction — idempotence of the keep-mask
// makes the merge order irrelevant. Candidate order is preserved, exactly
// as in the serial path.
//
// irlint:cold opt-in parallel fan-out; per-chunk masks are the cost of concurrency, not the serial query path
func (h *idHint) intersectParallel(q model.Interval, cands []model.ObjectID, keep []bool, pool *exec.Pool) []model.ObjectID {
	parts := h.relevant(q, nil)
	if pool == nil || pool.Workers() <= 1 || len(parts) < parallelCutoff {
		for i := range keep {
			keep[i] = false
		}
		for _, rp := range parts {
			markMatches(rp.p.o, cands, keep)
			if rp.ob.First {
				markMatches(rp.p.r, cands, keep)
			}
		}
		return compact(cands, keep)
	}
	masks := exec.MapChunks(pool, len(parts), parallelMinPer, func(lo, hi int) []bool {
		mask := make([]bool, len(cands))
		for _, rp := range parts[lo:hi] {
			markMatches(rp.p.o, cands, mask)
			if rp.ob.First {
				markMatches(rp.p.r, cands, mask)
			}
		}
		return mask
	})
	for i := range keep {
		keep[i] = false
	}
	for _, mask := range masks {
		for i, k := range mask {
			if k {
				keep[i] = true
			}
		}
	}
	return compact(cands, keep)
}

func compact(cands []model.ObjectID, keep []bool) []model.ObjectID {
	w := 0
	for i, k := range keep {
		if k {
			cands[w] = cands[i]
			w++
		}
	}
	return cands[:w]
}

// QueryP is Query with intra-query parallelism: the initial range query
// fans across partitions, and each candidate probe pass fans across the
// further element's partitions. Results equal Query as a set.
func (ix *BinaryIndex) QueryP(q model.Query, pool *exec.Pool) []model.ObjectID {
	if pool == nil || pool.Workers() <= 1 {
		return ix.Query(q)
	}
	if len(q.Elems) == 0 {
		return ix.queryTemporalOnlyP(q, pool)
	}
	plan := dict.PlanOrder(q.Elems, ix.freqs)
	first := plan[0]
	if int(first) >= len(ix.hints) || ix.hints[first] == nil {
		return nil
	}
	cands := ix.hints[first].TracedRangeQueryParallel(q.Interval, pool, q.Trace, nil)
	return ix.probeRest(q, plan, cands, pool)
}

func (ix *BinaryIndex) queryTemporalOnlyP(q model.Query, pool *exec.Pool) []model.ObjectID {
	defer q.Trace.StartStage(obs.StagePostings).End()
	partials := exec.MapChunks(pool, len(ix.hints), parallelMinPer, func(lo, hi int) []model.ObjectID {
		var buf []model.ObjectID
		for _, h := range ix.hints[lo:hi] {
			if h != nil {
				buf = h.RangeQuery(q.Interval, buf)
			}
		}
		return buf
	})
	var out []model.ObjectID
	for _, b := range partials {
		out = append(out, b...)
	}
	model.SortIDs(out)
	return model.DedupIDs(out)
}

// QueryP is Query with the range query and each merge intersection fanned
// across the pool.
func (ix *MergeIndex) QueryP(q model.Query, pool *exec.Pool) []model.ObjectID {
	if pool == nil || pool.Workers() <= 1 {
		return ix.Query(q)
	}
	if len(q.Elems) == 0 {
		return ix.queryTemporalOnlyP(q, pool)
	}
	plan := dict.PlanOrder(q.Elems, ix.freqs)
	first := plan[0]
	if int(first) >= len(ix.hints) || ix.hints[first] == nil {
		return nil
	}
	cands := ix.hints[first].seed(q, pool)
	return ix.intersectRest(q, plan, cands, pool)
}

func (ix *MergeIndex) queryTemporalOnlyP(q model.Query, pool *exec.Pool) []model.ObjectID {
	defer q.Trace.StartStage(obs.StagePostings).End()
	partials := exec.MapChunks(pool, len(ix.hints), parallelMinPer, func(lo, hi int) []model.ObjectID {
		var buf []model.ObjectID
		for _, h := range ix.hints[lo:hi] {
			if h != nil {
				buf = h.rangeQuery(q.Interval, buf)
			}
		}
		return buf
	})
	var out []model.ObjectID
	for _, b := range partials {
		out = append(out, b...)
	}
	model.SortIDs(out)
	return model.DedupIDs(out)
}

// QueryP is Query with the range query fanned across partitions and the
// sliced intersections fanned across slices, per-chunk keep masks OR-ed
// under the same idempotent reference-value de-dup as the serial path.
func (ix *HybridIndex) QueryP(q model.Query, pool *exec.Pool) []model.ObjectID {
	if pool == nil || pool.Workers() <= 1 {
		return ix.Query(q)
	}
	if len(q.Elems) == 0 {
		return ix.queryTemporalOnlyP(q, pool)
	}
	plan := dict.PlanOrder(q.Elems, ix.freqs)
	first := plan[0]
	if int(first) >= len(ix.hints) || ix.hints[first] == nil {
		return nil
	}
	cands := ix.hints[first].seed(q, pool)
	if len(plan) == 1 {
		return cands
	}
	return ix.intersectSlices(q, plan, cands, pool)
}

// markSlice is the per-slice merge of HybridIndex.Query, factored out so
// serial and parallel paths share one implementation. Size-skewed pairs
// gallop through the larger side instead of merging both.
func markSlice(sub []slicePair, cands []model.ObjectID, keep []bool) {
	if len(cands) > len(sub)*postings.GallopRatio {
		lo := 0
		for j := range sub {
			lo = postings.GallopLowerBound(cands, sub[j].ID, lo)
			if lo == len(cands) {
				return
			}
			if cands[lo] == sub[j].ID {
				if sub[j].Start != deadStart {
					keep[lo] = true
				}
				lo++
			}
		}
		return
	}
	i, j := 0, 0
	for i < len(cands) && j < len(sub) {
		switch {
		case cands[i] < sub[j].ID:
			i++
		case cands[i] > sub[j].ID:
			j++
		default:
			if sub[j].Start != deadStart {
				keep[i] = true
			}
			i++
			j++
		}
	}
}

// markSliceBitmap sets the bit of every live replica in the slice — the
// bitmap-container counterpart of markSlice, used when the candidate set
// is dense enough that per-slice merges would re-walk it wholesale.
//
// irlint:hot bitmap-container slice marking for dense candidate sets
func markSliceBitmap(sub []slicePair, bm *postings.Bitmap) {
	for j := range sub {
		if sub[j].Start != deadStart {
			bm.Set(sub[j].ID)
		}
	}
}

func (ix *HybridIndex) queryTemporalOnlyP(q model.Query, pool *exec.Pool) []model.ObjectID {
	defer q.Trace.StartStage(obs.StagePostings).End()
	partials := exec.MapChunks(pool, len(ix.hints), parallelMinPer, func(lo, hi int) []model.ObjectID {
		var buf []model.ObjectID
		for _, h := range ix.hints[lo:hi] {
			if h != nil {
				buf = h.rangeQuery(q.Interval, buf)
			}
		}
		return buf
	})
	var out []model.ObjectID
	for _, b := range partials {
		out = append(out, b...)
	}
	model.SortIDs(out)
	return model.DedupIDs(out)
}
