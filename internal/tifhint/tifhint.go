// Package tifhint implements the three novel IR-first indices of Section 3
// of the paper, which replace the slicing/sharding of a temporal inverted
// file with the interval index HINT:
//
//   - BinaryIndex (Algorithm 3): every postings list becomes a HINT with
//     beneficial temporal sorting; intersections probe the candidate set
//     with binary searches.
//   - MergeIndex (Algorithm 4): the per-element HINTs keep their divisions
//     sorted by object id, so intersections run in merge-sort fashion and
//     no temporal comparisons (or compfirst/complast flags) are needed
//     after the first element.
//   - HybridIndex (Section 3.2, tIF+HINT+Slicing): a dual-copy design —
//     an id-sorted HINT answers the first element's range query, while a
//     second sliced copy of each list, storing only <id, t_st> pairs,
//     serves the remaining intersections with far fewer fragments.
package tifhint

import (
	"repro/internal/domain"
	"repro/internal/hint"
	"repro/internal/model"
)

// DefaultBinaryM is the paper's tuned grid for the binary-search variant
// (Figure 9: best throughput at m = 10).
const DefaultBinaryM = 10

// DefaultMergeM is the paper's tuned grid for the merge-sort variant and
// the hybrid (Figure 9: m = 5; finer grids fragment the intersections).
const DefaultMergeM = 5

// Option configures the constructors.
type Option func(*config)

type config struct {
	m         int
	numSlices int
	costModel bool
}

// WithM fixes the number of HINT bits for every postings HINT.
func WithM(m int) Option {
	return func(c *config) {
		if m > 0 {
			c.m = m
		}
	}
}

// WithSlices sets the slice count of the hybrid's second copy.
func WithSlices(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.numSlices = n
		}
	}
}

// WithCostModelM derives m from the HINT cost model instead of a fixed
// value. Section 5.2 shows this over-sizes the IR-first variants (the
// model ignores the description attribute), which is why fixed tuned
// values are the default; the option exists to reproduce that finding.
func WithCostModelM() Option {
	return func(c *config) { c.costModel = true }
}

// sharedDomain computes the discretization domain every per-element HINT
// uses: the collection span on an m-bit grid.
func sharedDomain(c *model.Collection, m int) domain.Domain {
	span, ok := c.Span()
	if !ok {
		span = model.NewInterval(0, 0)
	}
	if m > domain.MaxBits {
		m = domain.MaxBits
	}
	// Never use a grid finer than the raw span.
	for m > 1 && int64(1)<<uint(m) > int64(span.End-span.Start)+1 {
		m--
	}
	d, _ := domain.Make(span.Start, span.End, m)
	return d
}

// costModelM runs the HINT cost model over the whole collection.
func costModelM(c *model.Collection, maxM int) int {
	span, ok := c.Span()
	if !ok {
		return 1
	}
	ivs := make([]model.Interval, len(c.Objects))
	for i := range c.Objects {
		ivs[i] = c.Objects[i].Interval
	}
	cfg := hint.DefaultCostModelConfig()
	cfg.MaxM = maxM
	return hint.EstimateM(ivs, span, cfg)
}
