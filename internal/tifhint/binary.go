package tifhint

import (
	"repro/internal/dict"
	"repro/internal/domain"
	"repro/internal/hint"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/postings"
)

// BinaryIndex is the tIF+HINT variant of Algorithm 3: every postings list
// I[e] is organized as a HINT H[e] with the full subs+sort optimizations.
// The least frequent query element is answered with a plain HINT range
// query; every further element traverses its HINT bottom-up, probing the
// id-sorted candidate set with binary searches while still applying the
// compfirst/complast temporal pruning.
type BinaryIndex struct {
	shared domain.Domain
	hints  []*hint.Index // per element, nil when unused
	freqs  []int
	live   int
	m      int
}

// NewBinary builds the binary-search tIF+HINT variant.
func NewBinary(c *model.Collection, opts ...Option) *BinaryIndex {
	cfg := config{m: DefaultBinaryM}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.costModel {
		cfg.m = costModelM(c, 20)
	}
	ix := &BinaryIndex{
		hints: make([]*hint.Index, c.DictSize),
		freqs: make([]int, c.DictSize),
		m:     cfg.m,
	}
	ix.shared = sharedDomain(c, cfg.m)
	for i := range c.Objects {
		// Bulk mode: append now, one sort per subdivision in Finalize —
		// sorted insertion would be quadratic on frequent elements.
		o := &c.Objects[i]
		p := postings.Posting{ID: o.ID, Interval: o.Interval}
		for _, e := range o.Elems {
			ix.growTo(int(e) + 1)
			if ix.hints[e] == nil {
				ix.hints[e] = hint.New(ix.shared)
			}
			ix.hints[e].Append(p)
			ix.freqs[e]++
		}
	}
	for _, h := range ix.hints {
		if h != nil {
			h.Finalize()
		}
	}
	ix.live = len(c.Objects)
	return ix
}

// Insert adds one object (update path, maintaining subdivision order).
func (ix *BinaryIndex) Insert(o model.Object) {
	p := postings.Posting{ID: o.ID, Interval: o.Interval}
	for _, e := range o.Elems {
		ix.growTo(int(e) + 1)
		if ix.hints[e] == nil {
			ix.hints[e] = hint.New(ix.shared)
		}
		ix.hints[e].Insert(p)
		ix.freqs[e]++
	}
	ix.live++
}

// Delete tombstones the object in each of its element HINTs.
func (ix *BinaryIndex) Delete(o model.Object) {
	p := postings.Posting{ID: o.ID, Interval: o.Interval}
	found := false
	for _, e := range o.Elems {
		if int(e) >= len(ix.hints) || ix.hints[e] == nil {
			continue
		}
		if ix.hints[e].Delete(p) {
			ix.freqs[e]--
			found = true
		}
	}
	if found {
		ix.live--
	}
}

func (ix *BinaryIndex) growTo(n int) {
	for len(ix.hints) < n {
		ix.hints = append(ix.hints, nil)
		ix.freqs = append(ix.freqs, 0)
	}
}

// Len returns the number of live objects.
func (ix *BinaryIndex) Len() int { return ix.live }

// M returns the grid bits in use.
func (ix *BinaryIndex) M() int { return ix.m }

// Query implements Algorithm 3.
//
// irlint:hot tIF+HINT binary-variant per-query entry point
func (ix *BinaryIndex) Query(q model.Query) []model.ObjectID {
	if len(q.Elems) == 0 {
		return ix.queryTemporalOnly(q)
	}
	plan := dict.PlanOrder(q.Elems, ix.freqs)
	first := plan[0]
	if int(first) >= len(ix.hints) || ix.hints[first] == nil {
		return nil
	}
	// Lines 1-3: the initial candidates from a plain HINT range query;
	// lines 4-29: the candidate probes (probeRest owns the stage spans).
	cands := ix.hints[first].TracedRangeQuery(q.Interval, q.Trace, nil)
	return ix.probeRest(q, plan, cands, nil)
}

func (ix *BinaryIndex) queryTemporalOnly(q model.Query) []model.ObjectID {
	defer q.Trace.StartStage(obs.StagePostings).End()
	var out []model.ObjectID
	for _, h := range ix.hints {
		if h != nil {
			out = h.RangeQuery(q.Interval, out)
		}
	}
	model.SortIDs(out)
	return model.DedupIDs(out)
}

// SizeBytes sums the per-element HINT sizes.
func (ix *BinaryIndex) SizeBytes() int64 {
	var total int64
	for _, h := range ix.hints {
		if h != nil {
			total += h.SizeBytes()
		}
	}
	return total + int64(len(ix.freqs))*8
}

// EntryCount sums stored entries across all postings HINTs.
func (ix *BinaryIndex) EntryCount() int64 {
	var total int64
	for _, h := range ix.hints {
		if h != nil {
			total += h.EntryCount()
		}
	}
	return total
}
