package tifhint

import (
	"sort"

	"repro/internal/domain"
	"repro/internal/hint"
	"repro/internal/model"
	"repro/internal/postings"
)

// idHint is the modified HINT of Algorithm 4: one hierarchy per postings
// list whose originals/replicas divisions are sorted by object id instead
// of the beneficial temporal orders. Range queries therefore scan with
// per-entry comparisons, but candidate intersections run as linear merges
// — the trade the merge-sort variant and the hybrid are built on.
type idHint struct {
	dom    domain.Domain
	levels []idLevel
	live   int
}

type idLevel struct {
	keys  []uint32
	parts []*idPart
}

// idPart holds the originals (o) and replicas (r) divisions, id-sorted.
type idPart struct {
	o []postings.Posting
	r []postings.Posting
}

func newIDHint(dom domain.Domain) *idHint {
	return &idHint{dom: dom, levels: make([]idLevel, dom.M+1)}
}

func (lv *idLevel) get(j uint32) *idPart {
	i := sort.Search(len(lv.keys), func(i int) bool { return lv.keys[i] >= j })
	if i < len(lv.keys) && lv.keys[i] == j {
		return lv.parts[i]
	}
	return nil
}

func (lv *idLevel) getOrCreate(j uint32) *idPart {
	i := sort.Search(len(lv.keys), func(i int) bool { return lv.keys[i] >= j })
	if i < len(lv.keys) && lv.keys[i] == j {
		return lv.parts[i]
	}
	lv.keys = append(lv.keys, 0)
	lv.parts = append(lv.parts, nil)
	copy(lv.keys[i+1:], lv.keys[i:])
	copy(lv.parts[i+1:], lv.parts[i:])
	lv.keys[i] = j
	p := &idPart{}
	lv.parts[i] = p
	return p
}

func (lv *idLevel) forRange(f, l uint32, fn func(j uint32, p *idPart)) {
	i := sort.Search(len(lv.keys), func(i int) bool { return lv.keys[i] >= f })
	for ; i < len(lv.keys) && lv.keys[i] <= l; i++ {
		fn(lv.keys[i], lv.parts[i])
	}
}

// insert routes the entry through the HINT assignment, keeping divisions
// id-sorted (appends suffice for monotonically growing ids; out-of-order
// ids fall back to a positioned insert).
func (h *idHint) insert(p postings.Posting) {
	hint.Assign(h.dom, p.Interval, func(level int, j uint32, original, _ bool) {
		part := h.levels[level].getOrCreate(j)
		if original {
			part.o = insertByID(part.o, p)
		} else {
			part.r = insertByID(part.r, p)
		}
	})
	h.live++
}

func insertByID(s []postings.Posting, p postings.Posting) []postings.Posting {
	if n := len(s); n == 0 || s[n-1].ID < p.ID {
		return append(s, p)
	}
	i := sort.Search(len(s), func(i int) bool { return s[i].ID > p.ID })
	s = append(s, postings.Posting{})
	copy(s[i+1:], s[i:])
	s[i] = p
	return s
}

// delete locates every copy by binary search on id and flags it with the
// tombstone interval sentinel (id order must survive, so the dead bit is
// not usable here). It reports whether a live copy was found.
func (h *idHint) delete(p postings.Posting) bool {
	found := false
	hint.Assign(h.dom, p.Interval, func(level int, j uint32, original, _ bool) {
		part := h.levels[level].get(j)
		if part == nil {
			return
		}
		div := part.o
		if !original {
			div = part.r
		}
		i := sort.Search(len(div), func(i int) bool { return div[i].ID >= p.ID })
		if i < len(div) && div[i].ID == p.ID && !postings.IsTombstone(div[i].Interval) {
			div[i].Interval = postings.Tombstone
			found = true
		}
	})
	if found {
		h.live--
	}
	return found
}

// rangeQuery runs Algorithm 2 over the id-sorted divisions: the partition
// pruning and compfirst/complast flags still apply, but every residual
// comparison is a scan (footnote 8 of the paper: id order trades slower
// range queries for mergeable intersections).
func (h *idHint) rangeQuery(q model.Interval, dst []model.ObjectID) []model.ObjectID {
	hint.Visit(h.dom, q, func(lv hint.LevelVisit) {
		h.levels[lv.Level].forRange(lv.F, lv.L, func(j uint32, p *idPart) {
			ob := lv.Oblige(j)
			dst = scanDivision(p.o, ob.CheckStart, ob.CheckEnd, q, dst)
			if ob.First {
				// Replicas never need the end check.
				dst = scanDivision(p.r, ob.CheckStart, false, q, dst)
			}
		})
	})
	return dst
}

// scanDivision appends live ids passing the requested comparisons.
func scanDivision(s []postings.Posting, checkStart, checkEnd bool, q model.Interval, dst []model.ObjectID) []model.ObjectID {
	for i := range s {
		if postings.IsTombstone(s[i].Interval) {
			continue
		}
		if checkStart && s[i].Interval.End < q.Start {
			continue
		}
		if checkEnd && s[i].Interval.Start > q.End {
			continue
		}
		dst = append(dst, s[i].ID)
	}
	return dst
}

// intersect computes C ∩ H[e] over the relevant divisions: every candidate
// already overlaps the query, so membership in any relevant division
// suffices (each candidate holding the element has exactly one entry among
// them, by HINT's duplicate-avoidance rule). The keep-mask merge preserves
// candidate order. keep must have len(cands) capacity.
func (h *idHint) intersect(q model.Interval, cands []model.ObjectID, keep []bool) []model.ObjectID {
	for i := range keep {
		keep[i] = false
	}
	hint.Visit(h.dom, q, func(lv hint.LevelVisit) {
		h.levels[lv.Level].forRange(lv.F, lv.L, func(j uint32, p *idPart) {
			markMatches(p.o, cands, keep)
			if j == lv.F {
				markMatches(p.r, cands, keep)
			}
		})
	})
	return compact(cands, keep)
}

// markMatches marks keep[i] for every candidate with a live entry in
// div. Skewed sizes dispatch to galloping probes of the larger side;
// balanced sizes run the linear merge.
func markMatches(div []postings.Posting, cands []model.ObjectID, keep []bool) {
	switch {
	case len(div) > len(cands)*postings.GallopRatio:
		lo := 0
		for i, id := range cands {
			lo = postings.GallopLowerBoundList(div, id, lo)
			if lo == len(div) {
				return
			}
			if div[lo].ID == id {
				if !postings.IsTombstone(div[lo].Interval) {
					keep[i] = true
				}
				lo++
			}
		}
	case len(cands) > len(div)*postings.GallopRatio:
		lo := 0
		for j := range div {
			lo = postings.GallopLowerBound(cands, div[j].ID, lo)
			if lo == len(cands) {
				return
			}
			if cands[lo] == div[j].ID {
				if !postings.IsTombstone(div[j].Interval) {
					keep[lo] = true
				}
				lo++
			}
		}
	default:
		i, j := 0, 0
		for i < len(cands) && j < len(div) {
			switch {
			case cands[i] < div[j].ID:
				i++
			case cands[i] > div[j].ID:
				j++
			default:
				if !postings.IsTombstone(div[j].Interval) {
					keep[i] = true
				}
				i++
				j++
			}
		}
	}
}

// intersectBitmap is intersect with the positional keep-mask replaced
// by a packed bitmap: every live entry of a relevant division marks its
// id bit (idempotent across divisions, and ids beyond the candidate
// universe are ignored), then one compaction pass keeps the candidates
// whose bit is set. Results are identical to intersect; the win is that
// dense candidate sets are not re-walked per division. cands must be
// non-empty and ascending.
//
// irlint:hot bitmap-container intersection for dense candidate sets
func (h *idHint) intersectBitmap(q model.Interval, cands []model.ObjectID, bm *postings.Bitmap) []model.ObjectID {
	bm.Reset(cands[len(cands)-1] + 1)
	hint.Visit(h.dom, q, func(lv hint.LevelVisit) {
		h.levels[lv.Level].forRange(lv.F, lv.L, func(j uint32, p *idPart) {
			markDivisionBitmap(p.o, bm)
			if j == lv.F {
				markDivisionBitmap(p.r, bm)
			}
		})
	})
	return bm.KeepSorted(cands)
}

// markDivisionBitmap sets the bit of every live entry in the division.
func markDivisionBitmap(div []postings.Posting, bm *postings.Bitmap) {
	for i := range div {
		if !postings.IsTombstone(div[i].Interval) {
			bm.Set(div[i].ID)
		}
	}
}

// entryCount returns stored entries including replicas and tombstones.
func (h *idHint) entryCount() int64 {
	var n int64
	for l := range h.levels {
		for _, p := range h.levels[l].parts {
			n += int64(len(p.o) + len(p.r))
		}
	}
	return n
}

// sizeBytes estimates resident bytes.
func (h *idHint) sizeBytes() int64 {
	var total int64
	for l := range h.levels {
		total += int64(cap(h.levels[l].keys))*4 + int64(cap(h.levels[l].parts))*8
		for _, p := range h.levels[l].parts {
			total += int64(cap(p.o)+cap(p.r))*16 + 48
		}
	}
	return total
}
