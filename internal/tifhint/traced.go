package tifhint

import (
	"sync"

	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/postings"
)

// keepScratch is a reusable keep-mask buffer. The pool recycles masks
// across queries: each grows to the largest candidate set it has served
// and is then reused, so steady-state intersections allocate no mask.
type keepScratch struct{ mask []bool }

var keepPool = sync.Pool{New: func() any { return &keepScratch{} }}

// grown returns the mask resized to n, reallocating only when the
// candidate set outgrows every previous query's. Contents are stale;
// every consumer resets the mask before marking. Noinline so the rare
// growth allocation stays attributed to this line instead of being
// inlined into every hot intersection loop.
//
//go:noinline
func (ks *keepScratch) grown(n int) []bool {
	if cap(ks.mask) < n {
		// lint:alloc-ok pooled scratch grows to the largest candidate set seen, then is reused across queries
		ks.mask = make([]bool, n)
	}
	return ks.mask[:n]
}

// Stage instrumentation for the three composites. Each helper owns one
// deferred span on q.Trace (nil = disabled, one branch of cost), so
// the serial and parallel query paths share identical stage
// boundaries: StagePostings around the first-element seed fetch,
// StageIntersect around the candidate-pruning passes over the
// remaining plan elements.

// seed runs the first-element postings fetch plus the id sort the
// merge intersections rely on, under one postings span. A non-nil pool
// fans the partition scans.
func (h *idHint) seed(q model.Query, pool *exec.Pool) []model.ObjectID {
	defer q.Trace.StartStage(obs.StagePostings).End()
	var cands []model.ObjectID
	if pool != nil {
		cands = h.rangeQueryParallel(q.Interval, pool, nil)
	} else {
		cands = h.rangeQuery(q.Interval, nil)
	}
	model.SortIDs(cands)
	return cands
}

// probeRest is Algorithm 3 lines 4-29 for the binary variant: each
// further plan element traverses its HINT probing the id-sorted
// candidate set, under one intersection span. A non-nil pool fans each
// probe pass.
func (ix *BinaryIndex) probeRest(q model.Query, plan []model.ElemID, cands []model.ObjectID, pool *exec.Pool) []model.ObjectID {
	defer q.Trace.StartStage(obs.StageIntersect).End()
	bs := postings.GetBitmapScratch()
	defer postings.PutBitmapScratch(bs)
	// One probe closure per query, hoisted out of the plan loop; sorted
	// is rebound per element so the closure always probes the current
	// candidate set.
	var sorted []model.ObjectID // lint:alloc-ok captured slice header, one heap slot per query
	// lint:alloc-ok one predicate closure per query, reused across plan elements
	pred := func(id model.ObjectID) bool {
		return postings.ContainsSorted(sorted, id)
	}
	for _, e := range plan[1:] {
		if len(cands) == 0 {
			return nil
		}
		if int(e) >= len(ix.hints) || ix.hints[e] == nil {
			return nil
		}
		// Line 5: sort C by id so membership probes are binary searches.
		model.SortIDs(cands)
		// Dense candidate sets copy into a bitmap, turning each probe
		// into an O(1) word test — and freeing cands for in-place reuse
		// as the output buffer (each id is reported at most once).
		if pool == nil && len(cands) >= postings.BitmapCutoff {
			bs.Cands.SetSorted(cands)
			cands = ix.hints[e].RangeQueryFilteredBitmap(q.Interval, &bs.Cands, cands[:0])
			continue
		}
		sorted = cands
		// Lines 7-29: traverse H[e] with the temporal flags, keeping the
		// candidates found in qualifying divisions.
		if pool != nil {
			cands = ix.hints[e].RangeQueryFilteredParallel(q.Interval, pred, pool, nil)
		} else {
			cands = ix.hints[e].RangeQueryFiltered(q.Interval, pred, nil)
		}
	}
	return cands
}

// intersectRest is Algorithm 4 lines 6-11 for the merge variant: each
// further plan element runs per-division merge intersections, under
// one intersection span.
func (ix *MergeIndex) intersectRest(q model.Query, plan []model.ElemID, cands []model.ObjectID, pool *exec.Pool) []model.ObjectID {
	defer q.Trace.StartStage(obs.StageIntersect).End()
	ks := keepPool.Get().(*keepScratch)
	defer keepPool.Put(ks)
	bs := postings.GetBitmapScratch()
	defer postings.PutBitmapScratch(bs)
	for _, e := range plan[1:] {
		if len(cands) == 0 {
			return nil
		}
		if int(e) >= len(ix.hints) || ix.hints[e] == nil {
			return nil
		}
		// Dense candidate sets take the bitmap container path: divisions
		// mark id bits word-addressed instead of re-merging the full
		// candidate slice per division.
		if pool == nil && len(cands) >= postings.BitmapCutoff {
			cands = ix.hints[e].intersectBitmap(q.Interval, cands, &bs.Matched)
			continue
		}
		keep := ks.grown(len(cands))
		if pool != nil {
			cands = ix.hints[e].intersectParallel(q.Interval, cands, keep, pool)
		} else {
			cands = ix.hints[e].intersect(q.Interval, cands, keep)
		}
	}
	return cands
}

// intersectSlices is the hybrid variant's sliced merge intersection
// over the remaining plan elements, under one intersection span. A
// non-nil pool fans wide slice ranges, OR-ing the per-chunk keep masks
// (idempotent, so chunk order is irrelevant).
func (ix *HybridIndex) intersectSlices(q model.Query, plan []model.ElemID, cands []model.ObjectID, pool *exec.Pool) []model.ObjectID {
	defer q.Trace.StartStage(obs.StageIntersect).End()
	sf, sl := ix.sliceOf(q.Interval.Start), ix.sliceOf(q.Interval.End)
	ks := keepPool.Get().(*keepScratch)
	defer keepPool.Put(ks)
	bs := postings.GetBitmapScratch()
	defer postings.PutBitmapScratch(bs)
	keep := ks.grown(len(cands))
	for _, e := range plan[1:] {
		if len(cands) == 0 {
			return nil
		}
		if int(e) >= len(ix.hints) || ix.hints[e] == nil {
			return nil
		}
		subs := ix.slices[e][sf : sl+1]
		// Candidates already overlap the query; any live replica proves
		// membership, and both the keep-mask and the bitmap marks are
		// idempotent, so replicated matches are harmless.
		serial := pool == nil || len(subs) < parallelCutoff
		if serial && len(cands) >= postings.BitmapCutoff {
			// Dense candidate sets take the bitmap container path.
			bm := &bs.Matched
			bm.Reset(cands[len(cands)-1] + 1)
			for _, sub := range subs {
				markSliceBitmap(sub, bm)
			}
			cands = bm.KeepSorted(cands)
			keep = keep[:len(cands)]
			continue
		}
		for i := range keep {
			keep[i] = false
		}
		if serial {
			for _, sub := range subs {
				markSlice(sub, cands, keep)
			}
		} else {
			markSlicesParallel(subs, cands, keep, pool)
		}
		cands = compact(cands, keep)
		keep = keep[:len(cands)]
	}
	return cands
}

// markSlicesParallel fans the slice merges across the pool, OR-ing the
// per-chunk masks into keep.
//
// irlint:cold opt-in parallel fan-out; per-chunk masks are the cost of concurrency, not the serial query path
func markSlicesParallel(subs [][]slicePair, cands []model.ObjectID, keep []bool, pool *exec.Pool) {
	masks := exec.MapChunks(pool, len(subs), parallelMinPer, func(lo, hi int) []bool {
		mask := make([]bool, len(cands))
		for _, sub := range subs[lo:hi] {
			markSlice(sub, cands, mask)
		}
		return mask
	})
	for _, mask := range masks {
		for i, k := range mask {
			if k {
				keep[i] = true
			}
		}
	}
}
