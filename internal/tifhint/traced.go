package tifhint

import (
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/postings"
)

// Stage instrumentation for the three composites. Each helper owns one
// deferred span on q.Trace (nil = disabled, one branch of cost), so
// the serial and parallel query paths share identical stage
// boundaries: StagePostings around the first-element seed fetch,
// StageIntersect around the candidate-pruning passes over the
// remaining plan elements.

// seed runs the first-element postings fetch plus the id sort the
// merge intersections rely on, under one postings span. A non-nil pool
// fans the partition scans.
func (h *idHint) seed(q model.Query, pool *exec.Pool) []model.ObjectID {
	defer q.Trace.StartStage(obs.StagePostings).End()
	var cands []model.ObjectID
	if pool != nil {
		cands = h.rangeQueryParallel(q.Interval, pool, nil)
	} else {
		cands = h.rangeQuery(q.Interval, nil)
	}
	model.SortIDs(cands)
	return cands
}

// probeRest is Algorithm 3 lines 4-29 for the binary variant: each
// further plan element traverses its HINT probing the id-sorted
// candidate set, under one intersection span. A non-nil pool fans each
// probe pass.
func (ix *BinaryIndex) probeRest(q model.Query, plan []model.ElemID, cands []model.ObjectID, pool *exec.Pool) []model.ObjectID {
	defer q.Trace.StartStage(obs.StageIntersect).End()
	for _, e := range plan[1:] {
		if len(cands) == 0 {
			return nil
		}
		if int(e) >= len(ix.hints) || ix.hints[e] == nil {
			return nil
		}
		// Line 5: sort C by id so membership probes are binary searches.
		model.SortIDs(cands)
		sorted := cands
		pred := func(id model.ObjectID) bool {
			return postings.ContainsSorted(sorted, id)
		}
		// Lines 7-29: traverse H[e] with the temporal flags, keeping the
		// candidates found in qualifying divisions.
		if pool != nil {
			cands = ix.hints[e].RangeQueryFilteredParallel(q.Interval, pred, pool, nil)
		} else {
			cands = ix.hints[e].RangeQueryFiltered(q.Interval, pred, nil)
		}
	}
	return cands
}

// intersectRest is Algorithm 4 lines 6-11 for the merge variant: each
// further plan element runs per-division merge intersections, under
// one intersection span.
func (ix *MergeIndex) intersectRest(q model.Query, plan []model.ElemID, cands []model.ObjectID, pool *exec.Pool) []model.ObjectID {
	defer q.Trace.StartStage(obs.StageIntersect).End()
	var keep []bool
	for _, e := range plan[1:] {
		if len(cands) == 0 {
			return nil
		}
		if int(e) >= len(ix.hints) || ix.hints[e] == nil {
			return nil
		}
		if cap(keep) < len(cands) {
			keep = make([]bool, len(cands))
		}
		if pool != nil {
			cands = ix.hints[e].intersectParallel(q.Interval, cands, keep[:len(cands)], pool)
		} else {
			cands = ix.hints[e].intersect(q.Interval, cands, keep[:len(cands)])
		}
	}
	return cands
}

// intersectSlices is the hybrid variant's sliced merge intersection
// over the remaining plan elements, under one intersection span. A
// non-nil pool fans wide slice ranges, OR-ing the per-chunk keep masks
// (idempotent, so chunk order is irrelevant).
func (ix *HybridIndex) intersectSlices(q model.Query, plan []model.ElemID, cands []model.ObjectID, pool *exec.Pool) []model.ObjectID {
	defer q.Trace.StartStage(obs.StageIntersect).End()
	sf, sl := ix.sliceOf(q.Interval.Start), ix.sliceOf(q.Interval.End)
	keep := make([]bool, len(cands))
	for _, e := range plan[1:] {
		if len(cands) == 0 {
			return nil
		}
		if int(e) >= len(ix.hints) || ix.hints[e] == nil {
			return nil
		}
		subs := ix.slices[e][sf : sl+1]
		for i := range keep {
			keep[i] = false
		}
		// Candidates already overlap the query; any live replica proves
		// membership, and the keep-mask is idempotent, so replicated
		// matches are harmless.
		if pool == nil || len(subs) < parallelCutoff {
			for _, sub := range subs {
				markSlice(sub, cands, keep)
			}
		} else {
			masks := exec.MapChunks(pool, len(subs), parallelMinPer, func(lo, hi int) []bool {
				mask := make([]bool, len(cands))
				for _, sub := range subs[lo:hi] {
					markSlice(sub, cands, mask)
				}
				return mask
			})
			for _, mask := range masks {
				for i, k := range mask {
					if k {
						keep[i] = true
					}
				}
			}
		}
		cands = compact(cands, keep)
		keep = keep[:len(cands)]
	}
	return cands
}
