package tifhint

import (
	"repro/internal/dict"
	"repro/internal/domain"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/postings"
)

// MergeIndex is the tIF+HINT variant of Algorithm 4: per-element HINTs
// with id-sorted divisions. The first element's candidates come from a
// range query; every further element is intersected division-by-division
// in merge-sort fashion, with no temporal comparisons at all — the initial
// candidate set already satisfies the temporal predicate.
type MergeIndex struct {
	shared domain.Domain
	hints  []*idHint
	freqs  []int
	live   int
	m      int
}

// NewMerge builds the merge-sort tIF+HINT variant.
func NewMerge(c *model.Collection, opts ...Option) *MergeIndex {
	cfg := config{m: DefaultMergeM}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.costModel {
		cfg.m = costModelM(c, 20)
	}
	ix := &MergeIndex{
		hints: make([]*idHint, c.DictSize),
		freqs: make([]int, c.DictSize),
		m:     cfg.m,
	}
	ix.shared = sharedDomain(c, cfg.m)
	for i := range c.Objects {
		ix.place(&c.Objects[i])
	}
	ix.live = len(c.Objects)
	return ix
}

func (ix *MergeIndex) place(o *model.Object) {
	p := postings.Posting{ID: o.ID, Interval: o.Interval}
	for _, e := range o.Elems {
		ix.growTo(int(e) + 1)
		if ix.hints[e] == nil {
			ix.hints[e] = newIDHint(ix.shared)
		}
		ix.hints[e].insert(p)
		ix.freqs[e]++
	}
}

// Insert adds one object. Divisions stay id-sorted for free when ids grow
// monotonically (the common case the paper notes); out-of-order ids use a
// positioned insert.
func (ix *MergeIndex) Insert(o model.Object) {
	ix.place(&o)
	ix.live++
}

// Delete tombstones the object's entries in each element HINT.
func (ix *MergeIndex) Delete(o model.Object) {
	p := postings.Posting{ID: o.ID, Interval: o.Interval}
	found := false
	for _, e := range o.Elems {
		if int(e) >= len(ix.hints) || ix.hints[e] == nil {
			continue
		}
		if ix.hints[e].delete(p) {
			ix.freqs[e]--
			found = true
		}
	}
	if found {
		ix.live--
	}
}

func (ix *MergeIndex) growTo(n int) {
	for len(ix.hints) < n {
		ix.hints = append(ix.hints, nil)
		ix.freqs = append(ix.freqs, 0)
	}
}

// Len returns the number of live objects.
func (ix *MergeIndex) Len() int { return ix.live }

// M returns the grid bits in use.
func (ix *MergeIndex) M() int { return ix.m }

// Query implements Algorithm 4.
//
// irlint:hot tIF+HINT merge-variant per-query entry point
func (ix *MergeIndex) Query(q model.Query) []model.ObjectID {
	if len(q.Elems) == 0 {
		return ix.queryTemporalOnly(q)
	}
	plan := dict.PlanOrder(q.Elems, ix.freqs)
	first := plan[0]
	if int(first) >= len(ix.hints) || ix.hints[first] == nil {
		return nil
	}
	// Line 3: range query for the initial candidates (seed also sorts
	// by id, line 5); lines 6-11: per-division merge intersections —
	// both helpers own their stage spans.
	cands := ix.hints[first].seed(q, nil)
	return ix.intersectRest(q, plan, cands, nil)
}

func (ix *MergeIndex) queryTemporalOnly(q model.Query) []model.ObjectID {
	defer q.Trace.StartStage(obs.StagePostings).End()
	var out []model.ObjectID
	for _, h := range ix.hints {
		if h != nil {
			out = h.rangeQuery(q.Interval, out)
		}
	}
	model.SortIDs(out)
	return model.DedupIDs(out)
}

// SizeBytes sums the per-element HINT sizes.
func (ix *MergeIndex) SizeBytes() int64 {
	var total int64
	for _, h := range ix.hints {
		if h != nil {
			total += h.sizeBytes()
		}
	}
	return total + int64(len(ix.freqs))*8
}

// EntryCount sums stored entries across all postings HINTs.
func (ix *MergeIndex) EntryCount() int64 {
	var total int64
	for _, h := range ix.hints {
		if h != nil {
			total += h.entryCount()
		}
	}
	return total
}
