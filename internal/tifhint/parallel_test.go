package tifhint

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/testutil"
)

// queryPer is implemented by the three composites' parallel paths.
type queryPer interface {
	testutil.UpdatableIndex
	QueryP(q model.Query, pool *exec.Pool) []model.ObjectID
}

// TestQueryPMatchesSerial checks that every composite's parallel path
// returns the serial result set — including after deletions, with empty
// term lists, and with unknown elements — across pool widths.
func TestQueryPMatchesSerial(t *testing.T) {
	builders := []struct {
		name  string
		build func(c *model.Collection) queryPer
	}{
		{"binary", func(c *model.Collection) queryPer { return NewBinary(c) }},
		{"merge", func(c *model.Collection) queryPer { return NewMerge(c) }},
		{"hybrid", func(c *model.Collection) queryPer { return NewHybrid(c) }},
	}
	pools := []*exec.Pool{nil, exec.NewPool(1), exec.NewPool(4), exec.NewPool(9)}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			cfg := testutil.DefaultConfig(71)
			c := testutil.RandomCollection(cfg)
			ix := b.build(c)
			// Delete a band of objects so tombstones are exercised too.
			for i := 10; i < 60; i++ {
				ix.Delete(c.Objects[i])
			}
			queries := testutil.RandomQueries(cfg, 150, 72)
			queries = append(queries,
				model.Query{Interval: model.NewInterval(cfg.DomainLo, cfg.DomainHi)},
				model.Query{Interval: model.NewInterval(cfg.DomainLo, cfg.DomainHi), Elems: []model.ElemID{0, 1}},
				model.Query{Interval: model.NewInterval(0, 10), Elems: []model.ElemID{model.ElemID(cfg.Dict + 5)}},
			)
			for qi, q := range queries {
				serial := testutil.Canonical(ix.Query(q))
				for pi, pool := range pools {
					got := testutil.Canonical(ix.QueryP(q, pool))
					if !model.EqualIDs(got, serial) {
						t.Fatalf("%s query %d pool %d: parallel %d ids, serial %d ids",
							b.name, qi, pi, len(got), len(serial))
					}
				}
			}
		})
	}
}
