package tifhint

import (
	"math/rand"
	"testing"

	"repro/internal/domain"
	"repro/internal/hint"
	"repro/internal/model"
	"repro/internal/postings"
)

func randomPostings(rng *rand.Rand, n int, hi int64) []postings.Posting {
	out := make([]postings.Posting, n)
	for i := range out {
		s := model.Timestamp(rng.Int63n(hi))
		e := s + model.Timestamp(rng.Int63n(hi/8+1))
		if e >= model.Timestamp(hi) {
			e = model.Timestamp(hi) - 1
		}
		out[i] = postings.Posting{ID: model.ObjectID(i), Interval: model.Interval{Start: s, End: e}}
	}
	return out
}

// The id-sorted HINT must answer range queries identically to the
// temporally sorted one — footnote 8's trade changes performance, never
// results.
func TestIDHintRangeMatchesHint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	entries := randomPostings(rng, 500, 1<<13)
	for _, m := range []int{1, 4, 8, 11} {
		dom := domain.New(0, 1<<13, m)
		reference := hint.Build(dom, entries)
		idh := newIDHint(dom)
		for _, p := range entries {
			idh.insert(p)
		}
		for trial := 0; trial < 150; trial++ {
			q := model.Canon(model.Timestamp(rng.Int63n(1<<13)), model.Timestamp(rng.Int63n(1<<13)))
			a := canonIDs(reference.RangeQuery(q, nil))
			b := canonIDs(idh.rangeQuery(q, nil))
			if !model.EqualIDs(a, b) {
				t.Fatalf("m=%d q=%v: hint %d ids, idHint %d ids", m, q, len(a), len(b))
			}
		}
	}
}

func canonIDs(ids []model.ObjectID) []model.ObjectID {
	out := append([]model.ObjectID(nil), ids...)
	model.SortIDs(out)
	return model.DedupIDs(out)
}

// intersect must behave as "candidates that overlap q and are present".
func TestIDHintIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	entries := randomPostings(rng, 300, 1<<12)
	dom := domain.New(0, 1<<12, 6)
	idh := newIDHint(dom)
	present := map[model.ObjectID]model.Interval{}
	for _, p := range entries {
		idh.insert(p)
		present[p.ID] = p.Interval
	}
	for trial := 0; trial < 100; trial++ {
		q := model.Canon(model.Timestamp(rng.Int63n(1<<12)), model.Timestamp(rng.Int63n(1<<12)))
		// Candidates: a random subset of ids that overlap q, plus ids
		// that do not exist in the index at all.
		var cands []model.ObjectID
		for id, iv := range present {
			if iv.Overlaps(q) && rng.Intn(2) == 0 {
				cands = append(cands, id)
			}
		}
		ghosts := 0
		for i := 0; i < 10; i++ {
			cands = append(cands, model.ObjectID(1000+i))
			ghosts++
		}
		model.SortIDs(cands)
		keep := make([]bool, len(cands))
		got := idh.intersect(q, append([]model.ObjectID(nil), cands...), keep)
		if len(got) != len(cands)-ghosts {
			t.Fatalf("trial %d: kept %d of %d (expected to drop %d ghosts)",
				trial, len(got), len(cands), ghosts)
		}
		for _, id := range got {
			if _, ok := present[id]; !ok {
				t.Fatalf("ghost id %d survived", id)
			}
		}
	}
}

func TestIDHintDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	entries := randomPostings(rng, 200, 1<<10)
	dom := domain.New(0, 1<<10, 5)
	idh := newIDHint(dom)
	for _, p := range entries {
		idh.insert(p)
	}
	victim := entries[42]
	if !idh.delete(victim) {
		t.Fatal("delete found nothing")
	}
	if idh.delete(victim) {
		t.Fatal("double delete reported success")
	}
	got := canonIDs(idh.rangeQuery(victim.Interval, nil))
	for _, id := range got {
		if id == victim.ID {
			t.Fatal("deleted id still reported")
		}
	}
	if idh.live != len(entries)-1 {
		t.Errorf("live = %d", idh.live)
	}
	// Missing entry delete.
	if idh.delete(postings.Posting{ID: 9999, Interval: victim.Interval}) {
		t.Error("delete of missing entry succeeded")
	}
}

func TestInsertByIDOutOfOrder(t *testing.T) {
	var s []postings.Posting
	for _, id := range []model.ObjectID{5, 1, 3, 2, 4} {
		s = insertByID(s, postings.Posting{ID: id})
	}
	for i := 1; i < len(s); i++ {
		if s[i].ID <= s[i-1].ID {
			t.Fatalf("not sorted: %v", s)
		}
	}
}
