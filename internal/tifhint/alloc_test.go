package tifhint

import (
	"math/rand"
	"testing"

	"repro/internal/allocbudget"
	"repro/internal/domain"
	"repro/internal/model"
	"repro/internal/postings"
)

// TestAllocBudget pins the keep-mask intersection of the tIF+HINT merge
// variant: with the mask and candidate buffer reused, the per-element
// intersection must stay allocation-free. The workload is chosen so every
// candidate survives — intersect compacts cands in place, so a lossy
// round would shrink the input for the next. `make benchmem` re-records.
func TestAllocBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dom := domain.New(0, 1<<20, 10)
	h := newIDHint(dom)
	n := 20_000
	cands := make([]model.ObjectID, 0, n)
	for i := 0; i < n; i++ {
		s := model.Timestamp(rng.Int63n(1 << 19))
		h.insert(postings.Posting{
			ID:       model.ObjectID(i),
			Interval: model.Interval{Start: s, End: s + model.Timestamp(rng.Int63n(1<<14)+1)},
		})
		cands = append(cands, model.ObjectID(i))
	}
	q := model.Interval{Start: 0, End: 1 << 20} // covers every entry: all candidates kept
	keep := make([]bool, len(cands))

	allocbudget.Gate(t, "tifhint/idHint.intersect", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got := h.intersect(q, cands, keep)
			if len(got) != len(cands) {
				b.Fatalf("intersect dropped candidates: %d of %d", len(got), len(cands))
			}
		}
	})
}
