// Package model defines the data model shared by every index in the
// repository: time intervals, data objects with descriptive elements, and
// time-travel IR queries, following Section 2.1 of Rauch & Bouros,
// "Fast Indexing for Temporal Information Retrieval".
package model

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/obs"
)

// Timestamp is a point in the (discrete) time domain. The unit is
// application-defined: seconds for the real-dataset stand-ins, abstract
// units for synthetic data.
type Timestamp = int64

// ObjectID identifies a data object in a collection. IDs are dense and
// assigned in insertion order, which lets indices keep postings implicitly
// sorted as objects arrive (Section 5.5 of the paper relies on this).
type ObjectID uint32

// ElemID identifies a descriptive element (e.g. a term) in the global
// dictionary.
type ElemID uint32

// Interval is a closed time interval [Start, End] with Start <= End.
// It contains every time point t with Start <= t <= End.
type Interval struct {
	Start Timestamp
	End   Timestamp
}

// NewInterval returns the interval [start, end]. It panics if start > end;
// use Canon to silently swap instead.
func NewInterval(start, end Timestamp) Interval {
	if start > end {
		panicInvalidInterval(start, end)
	}
	return Interval{Start: start, End: end}
}

// panicInvalidInterval formats the constructor-precondition panic outside
// NewInterval, which is inlined into query kernels: keeping the Sprintf
// here (noinline, or the outlining is undone and the escaping arguments
// re-attribute to every hot call site) keeps NewInterval's inlined body
// small and allocation-free.
//
// irlint:cold panic path, executes at most once and then unwinds
//
//go:noinline
func panicInvalidInterval(start, end Timestamp) {
	// lint:panic-ok documented constructor precondition; use Canon for untrusted endpoints
	panic(fmt.Sprintf("model: invalid interval [%d, %d]", start, end))
}

// Canon returns the interval with endpoints swapped if necessary so that
// Start <= End holds.
func Canon(a, b Timestamp) Interval {
	if a > b {
		a, b = b, a
	}
	return Interval{Start: a, End: b}
}

// Valid reports whether Start <= End.
func (iv Interval) Valid() bool { return iv.Start <= iv.End }

// Duration returns the number of time points covered by the interval.
func (iv Interval) Duration() int64 { return int64(iv.End-iv.Start) + 1 }

// Contains reports whether the time point t lies inside the interval.
func (iv Interval) Contains(t Timestamp) bool { return iv.Start <= t && t <= iv.End }

// Overlaps reports whether two closed intervals share at least one time
// point (the Overlap predicate of Definition 2.1).
func (iv Interval) Overlaps(other Interval) bool {
	return other.Start <= iv.End && iv.Start <= other.End
}

// Intersect returns the common sub-interval of iv and other and whether it
// is non-empty.
func (iv Interval) Intersect(other Interval) (Interval, bool) {
	st := iv.Start
	if other.Start > st {
		st = other.Start
	}
	en := iv.End
	if other.End < en {
		en = other.End
	}
	if st > en {
		return Interval{}, false
	}
	return Interval{Start: st, End: en}, true
}

// Union returns the smallest interval covering both iv and other.
func (iv Interval) Union(other Interval) Interval {
	st := iv.Start
	if other.Start < st {
		st = other.Start
	}
	en := iv.End
	if other.End > en {
		en = other.End
	}
	return Interval{Start: st, End: en}
}

// String renders the interval as "[Start, End]".
func (iv Interval) String() string { return fmt.Sprintf("[%d, %d]", iv.Start, iv.End) }

// Object is a data object: an identifier, a lifespan interval and a set of
// descriptive elements (the <id, [t_st, t_end], d> triple of the paper).
// Elements is a set: sorted ascending with no duplicates. Use NormalizeElems
// to establish that invariant on raw input.
type Object struct {
	ID       ObjectID
	Interval Interval
	Elems    []ElemID
}

// HasElem reports whether the object's description contains e, using binary
// search over the sorted Elems slice.
func (o *Object) HasElem(e ElemID) bool {
	i := sort.Search(len(o.Elems), func(i int) bool { return o.Elems[i] >= e })
	return i < len(o.Elems) && o.Elems[i] == e
}

// ContainsAll reports whether the object's description is a superset of the
// sorted element set q.
func (o *Object) ContainsAll(q []ElemID) bool {
	d := o.Elems
	for _, e := range q {
		i := sort.Search(len(d), func(i int) bool { return d[i] >= e })
		if i == len(d) || d[i] != e {
			return false
		}
		d = d[i+1:]
	}
	return true
}

// NormalizeElems sorts the slice in place and removes duplicates, returning
// the (possibly shorter) normalized slice.
func NormalizeElems(elems []ElemID) []ElemID {
	if len(elems) < 2 {
		return elems
	}
	sort.Slice(elems, func(i, j int) bool { return elems[i] < elems[j] })
	w := 1
	for i := 1; i < len(elems); i++ {
		if elems[i] != elems[w-1] {
			elems[w] = elems[i]
			w++
		}
	}
	return elems[:w]
}

// Query is a time-travel IR query: an interval of interest plus a set of
// required elements. An object matches iff its interval overlaps the query
// interval and its description contains every element in Elems
// (Definition 2.1).
type Query struct {
	Interval Interval
	Elems    []ElemID
	// Trace, when non-nil, receives per-stage spans as the query is
	// evaluated. The nil zero value is the disabled recorder: every
	// obs.Trace method is a nil-receiver no-op, so un-traced queries
	// pay one branch per stage boundary. Trace does not affect the
	// query's semantics — results are identical with or without it.
	Trace *obs.Trace
}

// Matches reports whether object o is an answer to query q.
func (q *Query) Matches(o *Object) bool {
	return q.Interval.Overlaps(o.Interval) && o.ContainsAll(q.Elems)
}

// Collection is an ordered set of objects over a shared dictionary. Object
// IDs equal their position in Objects; AppendObject maintains that.
type Collection struct {
	Objects []Object
	// DictSize is the number of distinct element ids in use
	// (ids are drawn from [0, DictSize)).
	DictSize int
}

// AppendObject adds an object to the collection, assigning the next dense
// ObjectID, normalizing its element set and growing DictSize as needed.
// It returns the assigned id.
func (c *Collection) AppendObject(iv Interval, elems []ElemID) ObjectID {
	id := ObjectID(len(c.Objects))
	elems = NormalizeElems(elems)
	for _, e := range elems {
		if int(e) >= c.DictSize {
			c.DictSize = int(e) + 1
		}
	}
	c.Objects = append(c.Objects, Object{ID: id, Interval: iv, Elems: elems})
	return id
}

// Len returns the number of objects in the collection.
func (c *Collection) Len() int { return len(c.Objects) }

// Span returns the smallest interval covering every object lifespan, or
// false when the collection is empty.
func (c *Collection) Span() (Interval, bool) {
	if len(c.Objects) == 0 {
		return Interval{}, false
	}
	span := c.Objects[0].Interval
	for _, o := range c.Objects[1:] {
		span = span.Union(o.Interval)
	}
	return span, true
}

// ElemFreqs returns the number of objects containing each element,
// indexed by ElemID.
func (c *Collection) ElemFreqs() []int {
	freqs := make([]int, c.DictSize)
	for i := range c.Objects {
		for _, e := range c.Objects[i].Elems {
			freqs[e]++
		}
	}
	return freqs
}

// SortIDs sorts a slice of object ids ascending in place. slices.Sort is
// allocation-free, which matters because several query paths sort
// candidate buffers per division.
func SortIDs(ids []ObjectID) {
	slices.Sort(ids)
}

// DedupIDs removes duplicates from a sorted id slice, in place.
func DedupIDs(ids []ObjectID) []ObjectID {
	if len(ids) < 2 {
		return ids
	}
	w := 1
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[w-1] {
			ids[w] = ids[i]
			w++
		}
	}
	return ids[:w]
}

// EqualIDs reports whether two id slices are element-wise equal.
func EqualIDs(a, b []ObjectID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
