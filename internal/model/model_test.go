package model

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalOverlaps(t *testing.T) {
	tests := []struct {
		name string
		a, b Interval
		want bool
	}{
		{"disjoint before", Interval{0, 5}, Interval{6, 10}, false},
		{"disjoint after", Interval{6, 10}, Interval{0, 5}, false},
		{"touching endpoints", Interval{0, 5}, Interval{5, 10}, true},
		{"contained", Interval{0, 10}, Interval{3, 4}, true},
		{"containing", Interval{3, 4}, Interval{0, 10}, true},
		{"partial left", Interval{0, 7}, Interval{5, 10}, true},
		{"partial right", Interval{5, 10}, Interval{0, 7}, true},
		{"identical", Interval{2, 9}, Interval{2, 9}, true},
		{"point vs point equal", Interval{4, 4}, Interval{4, 4}, true},
		{"point vs point diff", Interval{4, 4}, Interval{5, 5}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Overlaps(tt.b); got != tt.want {
				t.Errorf("Overlaps(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
			if got := tt.b.Overlaps(tt.a); got != tt.want {
				t.Errorf("Overlaps is not symmetric for %v, %v", tt.a, tt.b)
			}
		})
	}
}

func TestOverlapsMatchesIntersect(t *testing.T) {
	f := func(a0, a1, b0, b1 int16) bool {
		a := Canon(Timestamp(a0), Timestamp(a1))
		b := Canon(Timestamp(b0), Timestamp(b1))
		_, ok := a.Intersect(b)
		return ok == a.Overlaps(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := NewInterval(3, 9)
	if !iv.Valid() {
		t.Fatal("interval should be valid")
	}
	if iv.Duration() != 7 {
		t.Errorf("Duration = %d, want 7", iv.Duration())
	}
	if !iv.Contains(3) || !iv.Contains(9) || iv.Contains(10) || iv.Contains(2) {
		t.Error("Contains endpoints misbehaved")
	}
	if got := iv.Union(Interval{0, 4}); got != (Interval{0, 9}) {
		t.Errorf("Union = %v", got)
	}
	in, ok := iv.Intersect(Interval{7, 20})
	if !ok || in != (Interval{7, 9}) {
		t.Errorf("Intersect = %v, %v", in, ok)
	}
	if iv.String() != "[3, 9]" {
		t.Errorf("String = %q", iv.String())
	}
}

func TestNewIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewInterval(5, 2) should panic")
		}
	}()
	NewInterval(5, 2)
}

func TestCanonSwaps(t *testing.T) {
	if got := Canon(9, 2); got != (Interval{2, 9}) {
		t.Errorf("Canon(9,2) = %v", got)
	}
	if got := Canon(2, 9); got != (Interval{2, 9}) {
		t.Errorf("Canon(2,9) = %v", got)
	}
}

func TestNormalizeElems(t *testing.T) {
	tests := []struct {
		in, want []ElemID
	}{
		{nil, nil},
		{[]ElemID{5}, []ElemID{5}},
		{[]ElemID{3, 1, 2}, []ElemID{1, 2, 3}},
		{[]ElemID{2, 2, 2}, []ElemID{2}},
		{[]ElemID{4, 1, 4, 1, 9}, []ElemID{1, 4, 9}},
	}
	for _, tt := range tests {
		got := NormalizeElems(append([]ElemID(nil), tt.in...))
		if len(got) != len(tt.want) {
			t.Fatalf("NormalizeElems(%v) = %v, want %v", tt.in, got, tt.want)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Fatalf("NormalizeElems(%v) = %v, want %v", tt.in, got, tt.want)
			}
		}
	}
}

func TestObjectContainsAll(t *testing.T) {
	o := Object{Elems: []ElemID{1, 3, 5, 7}}
	tests := []struct {
		q    []ElemID
		want bool
	}{
		{nil, true},
		{[]ElemID{1}, true},
		{[]ElemID{7}, true},
		{[]ElemID{1, 7}, true},
		{[]ElemID{1, 3, 5, 7}, true},
		{[]ElemID{2}, false},
		{[]ElemID{1, 2}, false},
		{[]ElemID{0, 1}, false},
		{[]ElemID{7, 8}, false},
	}
	for _, tt := range tests {
		if got := o.ContainsAll(tt.q); got != tt.want {
			t.Errorf("ContainsAll(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if !o.HasElem(5) || o.HasElem(4) {
		t.Error("HasElem misbehaved")
	}
}

func TestQueryMatches(t *testing.T) {
	o := Object{Interval: Interval{10, 20}, Elems: []ElemID{1, 2}}
	q := Query{Interval: Interval{15, 25}, Elems: []ElemID{1}}
	if !q.Matches(&o) {
		t.Error("expected match")
	}
	q2 := Query{Interval: Interval{21, 25}, Elems: []ElemID{1}}
	if q2.Matches(&o) {
		t.Error("temporal mismatch should fail")
	}
	q3 := Query{Interval: Interval{15, 25}, Elems: []ElemID{3}}
	if q3.Matches(&o) {
		t.Error("element mismatch should fail")
	}
}

func TestCollectionAppendAndSpan(t *testing.T) {
	var c Collection
	if _, ok := c.Span(); ok {
		t.Error("empty collection should have no span")
	}
	id0 := c.AppendObject(Interval{5, 10}, []ElemID{2, 0, 2})
	id1 := c.AppendObject(Interval{1, 3}, []ElemID{4})
	if id0 != 0 || id1 != 1 {
		t.Errorf("ids = %d, %d", id0, id1)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	if c.DictSize != 5 {
		t.Errorf("DictSize = %d, want 5", c.DictSize)
	}
	if got := c.Objects[0].Elems; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("elems not normalized: %v", got)
	}
	span, ok := c.Span()
	if !ok || span != (Interval{1, 10}) {
		t.Errorf("Span = %v, %v", span, ok)
	}
}

func TestElemFreqs(t *testing.T) {
	var c Collection
	c.AppendObject(Interval{0, 1}, []ElemID{0, 1})
	c.AppendObject(Interval{0, 1}, []ElemID{1, 2})
	c.AppendObject(Interval{0, 1}, []ElemID{1})
	freqs := c.ElemFreqs()
	want := []int{1, 3, 1}
	for i := range want {
		if freqs[i] != want[i] {
			t.Errorf("freqs[%d] = %d, want %d", i, freqs[i], want[i])
		}
	}
}

func TestSortDedupEqualIDs(t *testing.T) {
	ids := []ObjectID{5, 1, 5, 3, 1}
	SortIDs(ids)
	ids = DedupIDs(ids)
	want := []ObjectID{1, 3, 5}
	if !EqualIDs(ids, want) {
		t.Errorf("got %v, want %v", ids, want)
	}
	if EqualIDs(ids, []ObjectID{1, 3}) || EqualIDs(ids, []ObjectID{1, 3, 6}) {
		t.Error("EqualIDs false positives")
	}
}

func TestDedupIDsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(50)
		ids := make([]ObjectID, n)
		for i := range ids {
			ids[i] = ObjectID(rng.Intn(20))
		}
		SortIDs(ids)
		out := DedupIDs(append([]ObjectID(nil), ids...))
		seen := map[ObjectID]bool{}
		for _, id := range ids {
			seen[id] = true
		}
		if len(out) != len(seen) {
			t.Fatalf("dedup length %d, want %d", len(out), len(seen))
		}
		for i := 1; i < len(out); i++ {
			if out[i] <= out[i-1] {
				t.Fatalf("not strictly increasing: %v", out)
			}
		}
	}
}
