// Package gen generates the synthetic datasets and query workloads of the
// paper's evaluation (Section 5.1, Tables 3 and 4): zipfian interval
// durations and element frequencies, normally positioned interval
// midpoints, and seeded stand-ins for the two real datasets (ECLOG and
// WIKIPEDIA) whose distributional shape Table 3 documents.
package gen

import (
	"math"
	"math/rand"
)

// Zipf draws values in [1, n] with P(k) ∝ k^-alpha via inverse-CDF over a
// precomputed table. Unlike math/rand's Zipf it supports any alpha > 0
// (the paper sweeps alpha down to 1.01 and zeta from 1.0, where
// rand.NewZipf's s > 1 requirement bites).
type Zipf struct {
	cdf []float64
}

// NewZipf builds the sampler for n ranks with the given skew.
func NewZipf(n int, alpha float64) *Zipf {
	if n < 1 {
		n = 1
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += math.Pow(float64(k), -alpha)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw samples a rank in [1, n].
func (z *Zipf) Draw(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// ClampedNormal draws from N(mean, stddev) clamped to [lo, hi].
func ClampedNormal(rng *rand.Rand, mean, stddev, lo, hi float64) float64 {
	v := rng.NormFloat64()*stddev + mean
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
