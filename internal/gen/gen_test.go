package gen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
)

func TestZipfBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, alpha := range []float64{0.5, 1.0, 1.01, 1.5, 2.0} {
		z := NewZipf(100, alpha)
		if z.N() != 100 {
			t.Fatalf("N = %d", z.N())
		}
		for i := 0; i < 2000; i++ {
			v := z.Draw(rng)
			if v < 1 || v > 100 {
				t.Fatalf("alpha=%v: draw %d out of [1,100]", alpha, v)
			}
		}
	}
	if NewZipf(0, 1.0).N() != 1 {
		t.Error("n<1 should clamp to 1")
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	// Higher alpha concentrates mass on rank 1.
	rng := rand.New(rand.NewSource(2))
	count1 := func(alpha float64) int {
		z := NewZipf(1000, alpha)
		n := 0
		for i := 0; i < 5000; i++ {
			if z.Draw(rng) == 1 {
				n++
			}
		}
		return n
	}
	lo, hi := count1(1.01), count1(2.0)
	if hi <= lo {
		t.Errorf("alpha=2.0 hit rank 1 %d times, alpha=1.01 %d times", hi, lo)
	}
}

func TestZipfMatchesTheory(t *testing.T) {
	// For alpha=1, P(1)/P(2) = 2; check the empirical ratio loosely.
	rng := rand.New(rand.NewSource(3))
	z := NewZipf(50, 1.0)
	counts := make([]int, 51)
	for i := 0; i < 200000; i++ {
		counts[z.Draw(rng)]++
	}
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("P(1)/P(2) = %.2f, want ~2", ratio)
	}
}

func TestClampedNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		v := ClampedNormal(rng, 50, 30, 0, 100)
		if v < 0 || v > 100 {
			t.Fatalf("value %v escaped clamp", v)
		}
	}
}

func TestSyntheticDefaults(t *testing.T) {
	cfg := SyntheticConfig{}.Defaults(0.001)
	if cfg.Cardinality != 1000 || cfg.DictSize != 100 {
		t.Errorf("scaled defaults: card=%d dict=%d", cfg.Cardinality, cfg.DictSize)
	}
	if cfg.Alpha != 1.2 || cfg.Zeta != 1.25 || cfg.DescSize != 10 {
		t.Errorf("shape defaults: %+v", cfg)
	}
	// Explicit values survive.
	cfg2 := SyntheticConfig{Cardinality: 5, Alpha: 1.8}.Defaults(0.5)
	if cfg2.Cardinality != 5 || cfg2.Alpha != 1.8 {
		t.Errorf("explicit values overwritten: %+v", cfg2)
	}
}

func TestSyntheticShape(t *testing.T) {
	cfg := SyntheticConfig{Seed: 7}.Defaults(0.002)
	c := Synthetic(cfg)
	if c.Len() != cfg.Cardinality {
		t.Fatalf("Len = %d, want %d", c.Len(), cfg.Cardinality)
	}
	span, _ := c.Span()
	if span.Start < 0 || span.End >= model.Timestamp(cfg.DomainSize) {
		t.Errorf("span %v escapes domain %d", span, cfg.DomainSize)
	}
	for i := range c.Objects {
		o := &c.Objects[i]
		if !o.Interval.Valid() {
			t.Fatalf("object %d has invalid interval %v", i, o.Interval)
		}
		if len(o.Elems) == 0 || len(o.Elems) > cfg.DescSize {
			t.Fatalf("object %d has %d elems", i, len(o.Elems))
		}
	}
	// Determinism.
	c2 := Synthetic(cfg)
	if c2.Objects[0].Interval != c.Objects[0].Interval {
		t.Error("generation is not deterministic")
	}
}

func TestSyntheticAlphaControlsDuration(t *testing.T) {
	mean := func(alpha float64) float64 {
		cfg := SyntheticConfig{Alpha: alpha, Seed: 9}.Defaults(0.002)
		c := Synthetic(cfg)
		var sum float64
		for i := range c.Objects {
			sum += float64(c.Objects[i].Interval.Duration())
		}
		return sum / float64(c.Len())
	}
	long, short := mean(1.01), mean(1.8)
	if long <= short*2 {
		t.Errorf("alpha=1.01 mean duration %.0f should dwarf alpha=1.8's %.0f", long, short)
	}
}

func TestSyntheticZetaControlsSkew(t *testing.T) {
	top := func(zeta float64) float64 {
		cfg := SyntheticConfig{Zeta: zeta, Seed: 11}.Defaults(0.002)
		c := Synthetic(cfg)
		freqs := c.ElemFreqs()
		max := 0
		for _, f := range freqs {
			if f > max {
				max = f
			}
		}
		return float64(max) / float64(c.Len())
	}
	if top(2.0) <= top(1.0) {
		t.Error("zeta=2.0 should concentrate the head element harder than zeta=1.0")
	}
}

func TestRealStandIns(t *testing.T) {
	ec := ECLOGLike(RealConfig{Scale: 0.003, Seed: 1})
	wk := WikipediaLike(RealConfig{Scale: 0.0008, Seed: 1})
	for name, c := range map[string]*model.Collection{"eclog": ec, "wikipedia": wk} {
		if c.Len() < 100 {
			t.Fatalf("%s: only %d objects", name, c.Len())
		}
		var descSum int
		for i := range c.Objects {
			if !c.Objects[i].Interval.Valid() {
				t.Fatalf("%s: invalid interval", name)
			}
			descSum += len(c.Objects[i].Elems)
		}
		if descSum/c.Len() < 5 {
			t.Errorf("%s: mean |d| = %d, unrealistically small", name, descSum/c.Len())
		}
	}
	// WIKIPEDIA-like descriptions are much larger than ECLOG-like on average.
	meanDesc := func(c *model.Collection) float64 {
		s := 0
		for i := range c.Objects {
			s += len(c.Objects[i].Elems)
		}
		return float64(s) / float64(c.Len())
	}
	if meanDesc(wk) <= meanDesc(ec) {
		t.Errorf("wiki mean |d| %.0f <= eclog %.0f", meanDesc(wk), meanDesc(ec))
	}
}

func TestECLOGDurationShare(t *testing.T) {
	// Table 3: mean duration ~8.4% of the domain; accept a loose band.
	c := ECLOGLike(RealConfig{Scale: 0.01, Seed: 3})
	var sum float64
	for i := range c.Objects {
		sum += float64(c.Objects[i].Interval.Duration())
	}
	share := sum / float64(c.Len()) / 15_807_599
	if share < 0.02 || share > 0.25 {
		t.Errorf("mean duration share = %.3f, want ~0.084", share)
	}
}

func TestWorkloadNonEmptyGuarantee(t *testing.T) {
	cfg := SyntheticConfig{Seed: 5}.Defaults(0.001)
	c := Synthetic(cfg)
	qs := Workload(c, DefaultQueryConfig(), 200, 13)
	if len(qs) != 200 {
		t.Fatalf("got %d queries", len(qs))
	}
	for i, q := range qs {
		if !q.Interval.Valid() {
			t.Fatalf("query %d invalid interval", i)
		}
		if len(q.Elems) == 0 || len(q.Elems) > 3 {
			t.Fatalf("query %d has %d elems", i, len(q.Elems))
		}
		// Seeded construction: at least one object matches.
		found := false
		for k := range c.Objects {
			if q.Matches(&c.Objects[k]) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("query %d has an empty result", i)
		}
	}
}

func TestWorkloadExtent(t *testing.T) {
	cfg := SyntheticConfig{Seed: 6}.Defaults(0.001)
	c := Synthetic(cfg)
	span, _ := c.Span()
	want := int64(float64(span.End-span.Start) * 0.01)
	qs := Workload(c, QueryConfig{ExtentFrac: 0.01, NumElems: 2}, 50, 3)
	for _, q := range qs {
		if got := int64(q.Interval.End - q.Interval.Start); got != want {
			t.Fatalf("extent %d, want %d", got, want)
		}
	}
	// Extent 0 produces stabbing queries.
	for _, q := range Workload(c, QueryConfig{ExtentFrac: 0, NumElems: 1}, 20, 4) {
		if q.Interval.Start != q.Interval.End {
			t.Fatal("stab query has extent")
		}
	}
}

func TestElementsInFreqBin(t *testing.T) {
	var c model.Collection
	// Element 0 in every object; element 1 in one of ten.
	for i := 0; i < 10; i++ {
		elems := []model.ElemID{0}
		if i == 0 {
			elems = append(elems, 1)
		}
		c.AppendObject(model.Interval{Start: 0, End: 1}, elems)
	}
	head := ElementsInFreqBin(&c, 0.5, 1.01)
	if len(head) != 1 || head[0] != 0 {
		t.Errorf("head bin = %v", head)
	}
	tail := ElementsInFreqBin(&c, 0, 0.2)
	if len(tail) != 1 || tail[0] != 1 {
		t.Errorf("tail bin = %v", tail)
	}
}

func TestWorkloadFreqBin(t *testing.T) {
	cfg := SyntheticConfig{Seed: 8}.Defaults(0.001)
	c := Synthetic(cfg)
	bin := FreqBins[3] // most frequent elements
	binSet := map[model.ElemID]bool{}
	for _, e := range ElementsInFreqBin(c, bin[0], bin[1]) {
		binSet[e] = true
	}
	if len(binSet) == 0 {
		t.Skip("no elements in the head bin at this scale")
	}
	qs := Workload(c, QueryConfig{ExtentFrac: 0.001, NumElems: 2, FreqBin: &bin}, 50, 9)
	for _, q := range qs {
		for _, e := range q.Elems {
			if !binSet[e] {
				t.Fatalf("element %d outside the requested bin", e)
			}
		}
	}
}

func TestMixedPoolDiversity(t *testing.T) {
	cfg := SyntheticConfig{Seed: 10}.Defaults(0.001)
	c := Synthetic(cfg)
	pool := MixedPool(c, 300, 21)
	if len(pool) != 300 {
		t.Fatalf("pool size %d", len(pool))
	}
	extents := map[int64]bool{}
	sizes := map[int]bool{}
	for _, q := range pool {
		extents[int64(q.Interval.End-q.Interval.Start)] = true
		sizes[len(q.Elems)] = true
	}
	if len(extents) < 3 || len(sizes) < 3 {
		t.Errorf("pool not diverse: %d extents, %d sizes", len(extents), len(sizes))
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	cfg := SyntheticConfig{Seed: 12}.Defaults(0.001)
	c := Synthetic(cfg)
	a := Workload(c, DefaultQueryConfig(), 50, 99)
	b := Workload(c, DefaultQueryConfig(), 50, 99)
	for i := range a {
		if a[i].Interval != b[i].Interval || len(a[i].Elems) != len(b[i].Elems) {
			t.Fatalf("query %d differs across identical seeds", i)
		}
	}
	other := Workload(c, DefaultQueryConfig(), 50, 100)
	same := true
	for i := range a {
		if a[i].Interval != other[i].Interval {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestDescriptionLognormalMean(t *testing.T) {
	// Sanity-check the lognormal parameters: exp(mu + sigma^2/2).
	mu, sigma := math.Log(38), 1.05
	want := math.Exp(mu + sigma*sigma/2)
	if want < 50 || want > 100 {
		t.Errorf("ECLOG desc mean parameterization drifted: %.1f", want)
	}
}
