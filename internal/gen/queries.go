package gen

import (
	"math/rand"

	"repro/internal/model"
)

// QueryConfig shapes one experimental query workload, following the four
// parameters Section 5.1 varies: interval extent, description size,
// element frequency and (indirectly) selectivity.
type QueryConfig struct {
	// ExtentFrac is the query interval extent as a fraction of the data
	// domain (0 produces stabbing queries). The paper's default is 0.001.
	ExtentFrac float64
	// NumElems is |q.d| (paper default 3).
	NumElems int
	// FreqBin, when non-nil, restricts query elements to those whose
	// document frequency (as a fraction of the collection) lies in
	// [FreqBin[0], FreqBin[1]).
	FreqBin *[2]float64
}

// DefaultQueryConfig is the paper's default workload: 0.1% extent, 3
// elements, no frequency restriction.
func DefaultQueryConfig() QueryConfig {
	return QueryConfig{ExtentFrac: 0.001, NumElems: 3}
}

// Workload generates n seeded queries against the collection. Unless a
// frequency bin is forced, elements are drawn from a random seed object
// positioned to overlap the query interval, so every query has a
// non-empty result (the paper evaluates 10K random queries with
// non-empty results) and element pick probability follows the element
// frequency distribution, as the paper's motivation assumes.
func Workload(c *model.Collection, cfg QueryConfig, n int, seed int64) []model.Query {
	rng := rand.New(rand.NewSource(seed))
	span, ok := c.Span()
	if !ok {
		return nil
	}
	if cfg.NumElems <= 0 {
		cfg.NumElems = 3
	}
	extent := int64(float64(span.End-span.Start) * cfg.ExtentFrac)

	var binElems []model.ElemID
	if cfg.FreqBin != nil {
		binElems = ElementsInFreqBin(c, cfg.FreqBin[0], cfg.FreqBin[1])
	}

	queries := make([]model.Query, 0, n)
	for len(queries) < n {
		var q model.Query
		if binElems != nil {
			q = binQuery(rng, c, span, extent, cfg.NumElems, binElems)
		} else {
			q = seededQuery(rng, c, span, extent, cfg.NumElems)
		}
		queries = append(queries, q)
	}
	return queries
}

// seededQuery picks a random object, takes NumElems of its elements and
// positions the query interval to overlap the object's lifespan.
func seededQuery(rng *rand.Rand, c *model.Collection, span model.Interval, extent int64, numElems int) model.Query {
	for {
		o := &c.Objects[rng.Intn(len(c.Objects))]
		if len(o.Elems) == 0 {
			continue
		}
		elems := pickElems(rng, o.Elems, numElems)
		// Place the query start so [start, start+extent] intersects the
		// object's lifespan.
		lo := o.Interval.Start - model.Timestamp(extent)
		if lo < span.Start {
			lo = span.Start
		}
		hi := o.Interval.End
		if hi > span.End-model.Timestamp(extent) {
			hi = span.End - model.Timestamp(extent)
		}
		if hi < lo {
			hi = lo
		}
		start := lo + model.Timestamp(rng.Int63n(int64(hi-lo)+1))
		return model.Query{
			Interval: model.NewInterval(start, start+model.Timestamp(extent)),
			Elems:    elems,
		}
	}
}

// binQuery draws elements from the frequency bin and positions the
// interval uniformly; non-empty results are not guaranteed (rare-element
// conjunctions can be empty — exactly the regime the frequency experiment
// measures).
func binQuery(rng *rand.Rand, c *model.Collection, span model.Interval, extent int64, numElems int, binElems []model.ElemID) model.Query {
	elems := make([]model.ElemID, numElems)
	for i := range elems {
		elems[i] = binElems[rng.Intn(len(binElems))]
	}
	maxStart := int64(span.End-span.Start) - extent
	if maxStart < 0 {
		maxStart = 0
	}
	start := span.Start + model.Timestamp(rng.Int63n(maxStart+1))
	return model.Query{
		Interval: model.NewInterval(start, start+model.Timestamp(extent)),
		Elems:    model.NormalizeElems(elems),
	}
}

// pickElems samples up to n distinct elements from the sorted set.
func pickElems(rng *rand.Rand, from []model.ElemID, n int) []model.ElemID {
	if n >= len(from) {
		return append([]model.ElemID(nil), from...)
	}
	idx := rng.Perm(len(from))[:n]
	out := make([]model.ElemID, n)
	for i, k := range idx {
		out[i] = from[k]
	}
	return model.NormalizeElems(out)
}

// ElementsInFreqBin returns the elements whose document frequency, as a
// fraction of the collection cardinality, lies in [lo, hi). An open upper
// bound is expressed with hi >= 1.
func ElementsInFreqBin(c *model.Collection, lo, hi float64) []model.ElemID {
	freqs := c.ElemFreqs()
	n := float64(c.Len())
	var out []model.ElemID
	for e, f := range freqs {
		if f == 0 {
			continue
		}
		frac := float64(f) / n
		if frac >= lo && (frac < hi || hi >= 1) {
			out = append(out, model.ElemID(e))
		}
	}
	return out
}

// FreqBins are the four element-frequency bins of the paper's third
// experimental parameter: [*-0.1%], (0.1%-1%], (1%-10%], (10%-*].
var FreqBins = [4][2]float64{
	{0, 0.001},
	{0.001, 0.01},
	{0.01, 0.1},
	{0.1, 1.01},
}

// FreqBinLabels renders the bins the way the figures do.
var FreqBinLabels = [4]string{"[*-0.1]", "(0.1-1]", "(1-10]", "(10-*]"}

// SelectivityBins are the result-size bins (fraction of cardinality) of
// the fourth experimental parameter: 0, (0-0.001%], ..., (1%-10%].
var SelectivityBins = [6][2]float64{
	{0, 0},
	{0, 0.00001},
	{0.00001, 0.0001},
	{0.0001, 0.001},
	{0.001, 0.01},
	{0.01, 0.1},
}

// SelectivityBinLabels renders the bins the way Figure 11/12 label them.
var SelectivityBinLabels = [6]string{"0", "(0-1e-3]", "(1e-3,1e-2]", "(1e-2,1e-1]", "(1e-1,1]", "(1,10]"}

// MixedPool generates a diverse pool of queries (varying extent, |q.d| and
// element rarity) for post-hoc classification into selectivity bins, the
// way the paper's fourth parameter mixes cases.
func MixedPool(c *model.Collection, n int, seed int64) []model.Query {
	rng := rand.New(rand.NewSource(seed))
	span, ok := c.Span()
	if !ok {
		return nil
	}
	extents := []float64{0, 0.0001, 0.001, 0.01, 0.1, 0.5}
	out := make([]model.Query, 0, n)
	for len(out) < n {
		extent := int64(float64(span.End-span.Start) * extents[rng.Intn(len(extents))])
		numElems := 1 + rng.Intn(5)
		if rng.Intn(3) == 0 {
			// Uniform random elements: likely-empty conjunctions feed the
			// zero-results bin.
			elems := make([]model.ElemID, numElems)
			for i := range elems {
				elems[i] = model.ElemID(rng.Intn(c.DictSize))
			}
			maxStart := int64(span.End-span.Start) - extent
			if maxStart < 0 {
				maxStart = 0
			}
			start := span.Start + model.Timestamp(rng.Int63n(maxStart+1))
			out = append(out, model.Query{
				Interval: model.NewInterval(start, start+model.Timestamp(extent)),
				Elems:    model.NormalizeElems(elems),
			})
			continue
		}
		out = append(out, seededQuery(rng, c, span, extent, numElems))
	}
	return out
}
