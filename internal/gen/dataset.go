package gen

import (
	"math"
	"math/rand"

	"repro/internal/model"
)

// SyntheticConfig mirrors Table 4 of the paper: the construction
// parameters of the synthetic datasets. Zero values take the defaults
// below.
type SyntheticConfig struct {
	Cardinality int     // number of objects (paper default 1M)
	DomainSize  int64   // time-domain units (paper default 128M)
	Alpha       float64 // zipf skew of interval durations (default 1.2)
	Sigma       float64 // stddev of the normal interval position (default DomainSize/128)
	DictSize    int     // dictionary size (paper default 100K)
	DescSize    int     // average description size |d| (default 10)
	Zeta        float64 // zipf skew of element frequencies (default 1.25)
	Seed        int64
}

// Defaults fills in zero fields with the paper's default values, scaled by
// the given factor in (0, 1] so the full experiment grid also runs at
// laptop scale (Section 3 of DESIGN.md documents this substitution).
func (cfg SyntheticConfig) Defaults(scale float64) SyntheticConfig {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	def := func(have int, want float64) int {
		if have > 0 {
			return have
		}
		n := int(want * scale)
		if n < 1 {
			n = 1
		}
		return n
	}
	cfg.Cardinality = def(cfg.Cardinality, 1_000_000)
	if cfg.DomainSize <= 0 {
		cfg.DomainSize = int64(128_000_000 * scale)
		if cfg.DomainSize < 1024 {
			cfg.DomainSize = 1024
		}
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 1.2
	}
	if cfg.Sigma <= 0 {
		cfg.Sigma = float64(cfg.DomainSize) / 128
	}
	cfg.DictSize = def(cfg.DictSize, 100_000)
	if cfg.DescSize <= 0 {
		cfg.DescSize = 10
	}
	if cfg.Zeta <= 0 {
		cfg.Zeta = 1.25
	}
	return cfg
}

// maxDurationRanks bounds the zipf duration table so construction stays
// O(ranks); durations are rescaled onto the domain.
const maxDurationRanks = 1 << 16

// Synthetic generates a dataset per the paper's recipe: interval durations
// zipf(alpha), interval midpoints normal(domain/2, sigma), element
// frequencies zipf(zeta) over the dictionary, |d| elements per object.
func Synthetic(cfg SyntheticConfig) *model.Collection {
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &model.Collection{DictSize: cfg.DictSize}

	ranks := maxDurationRanks
	if int64(ranks) > cfg.DomainSize {
		ranks = int(cfg.DomainSize)
	}
	durZipf := NewZipf(ranks, cfg.Alpha)
	durScale := float64(cfg.DomainSize) / float64(ranks)
	elemZipf := NewZipf(cfg.DictSize, cfg.Zeta)
	// Zipf rank r maps to a fixed random permutation of element ids so
	// that frequent elements are spread over the id space (as interning
	// order would produce in practice).
	perm := rng.Perm(cfg.DictSize)

	half := float64(cfg.DomainSize) / 2
	for i := 0; i < cfg.Cardinality; i++ {
		dur := int64(float64(durZipf.Draw(rng)) * durScale)
		if dur < 1 {
			dur = 1
		}
		mid := ClampedNormal(rng, half, cfg.Sigma, 0, float64(cfg.DomainSize-1))
		start := model.Timestamp(mid - float64(dur)/2)
		if start < 0 {
			start = 0
		}
		end := start + model.Timestamp(dur-1)
		if end >= model.Timestamp(cfg.DomainSize) {
			end = model.Timestamp(cfg.DomainSize - 1)
		}
		elems := make([]model.ElemID, cfg.DescSize)
		for j := range elems {
			elems[j] = model.ElemID(perm[elemZipf.Draw(rng)-1])
		}
		c.AppendObject(model.NewInterval(start, end), elems)
	}
	return c
}

// RealConfig shapes the two real-dataset stand-ins on a size scale in
// (0, 1]; 1.0 reproduces the Table 3 cardinalities.
type RealConfig struct {
	Scale float64
	Seed  int64
}

// ECLOGLike generates a collection matching the distributional shape of
// the ECLOG dataset (Table 3): ~300K e-commerce sessions over a ~15.8M
// second domain, mean duration ~8.4% of the domain, a 178K-element
// dictionary with zipfian request frequencies, and ~72-element
// descriptions with a heavy (lognormal) tail up to ~14K.
func ECLOGLike(cfg RealConfig) *model.Collection {
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		cfg.Scale = 1
	}
	// Only the cardinality scales; the dictionary keeps its full size so
	// that element frequencies, as fractions of the collection, match
	// Table 3 at every scale (scaling the dictionary down would inflate
	// per-element frequencies and distort who wins the intersections).
	return realLike(realShape{
		cardinality: scaleInt(300_311, cfg.Scale),
		domain:      15_807_599,
		durAlpha:    1.01, // heavy tail: mean duration ~8% of the domain
		dict:        178_478,
		descMu:      math.Log(38),
		descSigma:   1.05, // mean ~72, max tail into the thousands
		descMax:     14_399,
		zeta:        1.1,
		seed:        cfg.Seed,
	})
}

// WikipediaLike generates a collection matching the WIKIPEDIA dataset
// shape (Table 3): ~1.67M article revisions over ~126M seconds, mean
// duration ~5.2% of the domain, a 927K-term dictionary, ~367-term
// descriptions, and very frequent head terms (the most frequent term
// appears in nearly every revision).
func WikipediaLike(cfg RealConfig) *model.Collection {
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		cfg.Scale = 1
	}
	return realLike(realShape{
		cardinality: scaleInt(1_672_662, cfg.Scale),
		domain:      126_230_391,
		durAlpha:    1.1,
		dict:        927_283,
		descMu:      math.Log(195),
		descSigma:   1.0, // mean ~367
		descMax:     6_982,
		zeta:        1.3, // heavier head: top terms in almost every object
		seed:        cfg.Seed,
	})
}

func scaleInt(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 10 {
		v = 10
	}
	return v
}

type realShape struct {
	cardinality int
	domain      int64
	durAlpha    float64
	dict        int
	descMu      float64
	descSigma   float64
	descMax     int
	zeta        float64
	seed        int64
}

func realLike(s realShape) *model.Collection {
	rng := rand.New(rand.NewSource(s.seed))
	c := &model.Collection{DictSize: s.dict}
	ranks := maxDurationRanks
	durZipf := NewZipf(ranks, s.durAlpha)
	durScale := float64(s.domain) / float64(ranks)
	elemZipf := NewZipf(s.dict, s.zeta)
	for i := 0; i < s.cardinality; i++ {
		dur := int64(float64(durZipf.Draw(rng)) * durScale)
		if dur < 1 {
			dur = 1
		}
		start := model.Timestamp(rng.Int63n(s.domain))
		end := start + model.Timestamp(dur-1)
		if end >= model.Timestamp(s.domain) {
			end = model.Timestamp(s.domain - 1)
		}
		nd := int(math.Exp(rng.NormFloat64()*s.descSigma + s.descMu))
		if nd < 1 {
			nd = 1
		}
		if nd > s.descMax {
			nd = s.descMax
		}
		if nd > s.dict {
			nd = s.dict
		}
		elems := make([]model.ElemID, nd)
		for j := range elems {
			elems[j] = model.ElemID(elemZipf.Draw(rng) - 1)
		}
		c.AppendObject(model.NewInterval(start, end), elems)
	}
	return c
}
