//go:build !invariants

package hint

import "repro/internal/postings"

// InvariantsEnabled reports whether the runtime assertion layer is
// compiled in (the `invariants` build tag, exercised by CI).
const InvariantsEnabled = false

// assertPartitionSorted is a no-op in normal builds; see invariants_on.go.
func assertPartitionSorted(*Partition, string) {}

// assertDirectorySorted is a no-op in normal builds; see invariants_on.go.
func assertDirectorySorted(*levelStore, string) {}

// assertNoTombstoneEntries is a no-op in normal builds; see invariants_on.go.
func assertNoTombstoneEntries([]postings.Posting, string) {}
