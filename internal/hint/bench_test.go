package hint

import (
	"math/rand"
	"testing"

	"repro/internal/domain"
	"repro/internal/model"
)

// benchIndex builds a 100K-interval HINT once per benchmark binary.
func benchIndex(b *testing.B) (*Index, []model.Interval) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	entries := randomEntries(rng, 100_000, 0, 1<<22)
	ix := Build(domain.New(0, 1<<22, 12), entries)
	queries := make([]model.Interval, 1024)
	for i := range queries {
		s := model.Timestamp(rng.Int63n(1 << 22))
		queries[i] = model.Interval{Start: s, End: s + 4096} // ~0.1% extent
	}
	return ix, queries
}

func BenchmarkRangeQuery(b *testing.B) {
	ix, queries := benchIndex(b)
	var dst []model.ObjectID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = ix.RangeQuery(queries[i%len(queries)], dst[:0])
	}
}

func BenchmarkRangeQueryTopDown(b *testing.B) {
	ix, queries := benchIndex(b)
	var dst []model.ObjectID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = ix.RangeQueryTopDown(queries[i%len(queries)], dst[:0])
	}
}

func BenchmarkStab(b *testing.B) {
	ix, queries := benchIndex(b)
	var dst []model.ObjectID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = ix.Stab(queries[i%len(queries)].Start, dst[:0])
	}
}

func BenchmarkCountRange(b *testing.B) {
	ix, queries := benchIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.CountRange(queries[i%len(queries)])
	}
}

func BenchmarkAllenDuring(b *testing.B) {
	ix, queries := benchIndex(b)
	var dst []model.ObjectID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = ix.AllenQuery(RelDuring, queries[i%len(queries)], dst[:0])
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	entries := randomEntries(rng, 50_000, 0, 1<<20)
	ix := Build(domain.New(0, 1<<20, 10), entries)
	extra := randomEntries(rng, 4096, 0, 1<<20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := extra[i%len(extra)]
		p.ID = model.ObjectID(100_000 + i)
		ix.Insert(p)
	}
}
