package hint

import (
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/obs"
)

// This file wires the HINT traversal entry points into the
// observability layer. Each wrapper records one span on tr and
// delegates; a nil tr is the disabled recorder, so un-traced callers
// pay one branch. The spans are deferred so early returns and panics
// can never leak an open span (the span-end irlint analyzer enforces
// the pattern).

// TracedRangeQuery is RangeQuery with the postings-fetch stage
// recorded on tr.
func (ix *Index) TracedRangeQuery(q model.Interval, tr *obs.Trace, dst []model.ObjectID) []model.ObjectID {
	defer tr.StartStage(obs.StagePostings).End()
	return ix.RangeQuery(q, dst)
}

// TracedRangeQueryParallel is RangeQueryParallel with the
// postings-fetch stage recorded on tr.
func (ix *Index) TracedRangeQueryParallel(q model.Interval, pool *exec.Pool, tr *obs.Trace, dst []model.ObjectID) []model.ObjectID {
	defer tr.StartStage(obs.StagePostings).End()
	return ix.RangeQueryParallel(q, pool, dst)
}

// TracedRangeQueryFiltered is RangeQueryFiltered — the Algorithm 3
// candidate probe — with the intersection stage recorded on tr.
func (ix *Index) TracedRangeQueryFiltered(q model.Interval, pred func(model.ObjectID) bool, tr *obs.Trace, dst []model.ObjectID) []model.ObjectID {
	defer tr.StartStage(obs.StageIntersect).End()
	return ix.RangeQueryFiltered(q, pred, dst)
}

// TracedRangeQueryFilteredParallel is RangeQueryFilteredParallel with
// the intersection stage recorded on tr.
func (ix *Index) TracedRangeQueryFilteredParallel(q model.Interval, pred func(model.ObjectID) bool, pool *exec.Pool, tr *obs.Trace, dst []model.ObjectID) []model.ObjectID {
	defer tr.StartStage(obs.StageIntersect).End()
	return ix.RangeQueryFilteredParallel(q, pred, pool, dst)
}
