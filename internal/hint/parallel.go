package hint

import (
	"repro/internal/exec"
	"repro/internal/model"
)

// HINT's partition decomposition is embarrassingly parallel: the relevant
// partitions of a range query are disjoint slices of read-only storage,
// and the comparison obligations of each depend only on its position in
// the bottom-up walk (computed serially, before any fan-out). This file
// fans the per-partition scans of query.go across an exec.Pool. Results
// stay duplicate-free because HINT's assignment reports every interval
// exactly once across the relevant partitions; only the output order
// changes, so callers needing a stable order must sort.

// RelevantPartition pairs one populated relevant partition with the
// comparison obligations Algorithm 2 derives for it.
type RelevantPartition struct {
	P  *Partition
	Ob Obligations
}

// Relevant appends the relevant partitions of q in bottom-up traversal
// order, each with its obligations — the serial prologue every parallel
// scan shares. The index is finalized as a side effect.
func (ix *Index) Relevant(q model.Interval, dst []RelevantPartition) []RelevantPartition {
	ix.VisitRelevant(q, func(p *Partition, ob Obligations) {
		dst = append(dst, RelevantPartition{P: p, Ob: ob})
	})
	return dst
}

// fanCutoff is the minimum number of relevant partitions worth fanning
// out; below it the chunk bookkeeping costs more than the scans.
const fanCutoff = 8

// fanMinPer is the smallest per-chunk partition count.
const fanMinPer = 2

// RangeQueryParallel answers the same queries as RangeQuery with the
// per-partition scans fanned across the pool. Each id appears exactly
// once; the order is nondeterministic under concurrency. A nil or
// single-worker pool (or a small partition count) falls back to the
// serial scan.
//
// irlint:cold opt-in parallel fan-out; per-chunk buffers are the cost of concurrency, not the serial query path
func (ix *Index) RangeQueryParallel(q model.Interval, pool *exec.Pool, dst []model.ObjectID) []model.ObjectID {
	parts := ix.Relevant(q, nil)
	if pool == nil || pool.Workers() <= 1 || len(parts) < fanCutoff {
		for _, rp := range parts {
			dst = reportPartition(rp.P, rp.Ob, q, dst)
		}
		return dst
	}
	partials := exec.MapChunks(pool, len(parts), fanMinPer, func(lo, hi int) []model.ObjectID {
		var buf []model.ObjectID
		for i := lo; i < hi; i++ {
			buf = reportPartition(parts[i].P, parts[i].Ob, q, buf)
		}
		return buf
	})
	for _, b := range partials {
		dst = append(dst, b...)
	}
	return dst
}

// RangeQueryFilteredParallel is RangeQueryFiltered with the partition
// scans fanned across the pool. pred runs concurrently and must be safe
// for concurrent use (the Algorithm 3 candidate probe — a binary search
// over an immutable sorted set — is).
//
// irlint:cold opt-in parallel fan-out; per-chunk buffers are the cost of concurrency, not the serial query path
func (ix *Index) RangeQueryFilteredParallel(q model.Interval, pred func(model.ObjectID) bool, pool *exec.Pool, dst []model.ObjectID) []model.ObjectID {
	parts := ix.Relevant(q, nil)
	if pool == nil || pool.Workers() <= 1 || len(parts) < fanCutoff {
		for _, rp := range parts {
			dst = reportPartitionFiltered(rp.P, rp.Ob, q, pred, dst)
		}
		return dst
	}
	partials := exec.MapChunks(pool, len(parts), fanMinPer, func(lo, hi int) []model.ObjectID {
		var buf []model.ObjectID
		for i := lo; i < hi; i++ {
			buf = reportPartitionFiltered(parts[i].P, parts[i].Ob, q, pred, buf)
		}
		return buf
	})
	for _, b := range partials {
		dst = append(dst, b...)
	}
	return dst
}
