package hint

import (
	"math/rand"
	"testing"

	"repro/internal/domain"
	"repro/internal/exec"
	"repro/internal/model"
)

// TestRangeQueryParallelMatchesSerial checks that the fanned-out scan
// returns exactly the serial result set (as sets — the parallel order is
// nondeterministic) and stays duplicate-free, across pool sizes that do
// and do not trigger the fan-out path.
func TestRangeQueryParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dom := domain.New(0, 1<<12-1, 9)
	entries := randomEntries(rng, 3000, dom.Min, dom.Max)
	ix := New(dom)
	for _, p := range entries {
		ix.Append(p)
	}
	pools := []*exec.Pool{nil, exec.NewPool(1), exec.NewPool(4), exec.NewPool(9)}
	for qi := 0; qi < 200; qi++ {
		q := randomQuery(rng, dom.Min, dom.Max)
		serial := canon(ix.RangeQuery(q, nil))
		for pi, pool := range pools {
			got := ix.RangeQueryParallel(q, pool, nil)
			if len(got) != len(serial) {
				t.Fatalf("query %v pool %d: parallel returned %d ids (duplicates or losses), serial %d",
					q, pi, len(got), len(serial))
			}
			if !model.EqualIDs(canon(got), serial) {
				t.Fatalf("query %v pool %d: parallel set differs from serial", q, pi)
			}
		}
	}
}

func TestRangeQueryFilteredParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	dom := domain.New(0, 1<<12-1, 9)
	entries := randomEntries(rng, 3000, dom.Min, dom.Max)
	ix := New(dom)
	for _, p := range entries {
		ix.Append(p)
	}
	pred := func(id model.ObjectID) bool { return id%3 == 0 }
	pool := exec.NewPool(8)
	for qi := 0; qi < 200; qi++ {
		q := randomQuery(rng, dom.Min, dom.Max)
		serial := canon(ix.RangeQueryFiltered(q, pred, nil))
		got := ix.RangeQueryFilteredParallel(q, pred, pool, nil)
		if len(got) != len(serial) || !model.EqualIDs(canon(got), serial) {
			t.Fatalf("query %v: filtered parallel set differs from serial", q)
		}
	}
}

func randomQuery(rng *rand.Rand, lo, hi model.Timestamp) model.Interval {
	span := int64(hi - lo + 1)
	s := lo + model.Timestamp(rng.Int63n(span))
	e := s + model.Timestamp(rng.Int63n(span/8+1))
	if e > hi {
		e = hi
	}
	return iv(s, e)
}
