package hint

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/domain"
	"repro/internal/model"
	"repro/internal/postings"
)

// Property: for any m, any interval set and any query, RangeQuery equals
// the naive scan. testing/quick drives the shapes; a fixed PRNG expands
// each shape into a concrete workload.
func TestRangeQueryQuick(t *testing.T) {
	f := func(mRaw uint8, nRaw uint8, seed int64, q0, q1 uint16) bool {
		m := int(mRaw%12) + 1
		n := int(nRaw)%150 + 1
		rng := rand.New(rand.NewSource(seed))
		entries := randomEntries(rng, n, 0, 1<<15)
		ix := Build(domain.New(0, 1<<15, m), entries)
		q := model.Canon(model.Timestamp(q0)%(1<<15), model.Timestamp(q1)%(1<<15))
		got := canon(ix.RangeQuery(q, nil))
		want := naiveOverlap(entries, q)
		return model.EqualIDs(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: insert-then-delete of the same entry leaves query results
// unchanged for any query.
func TestInsertDeleteInverseQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := randomEntries(rng, 200, 0, 8191)
	dom := domain.New(0, 8191, 8)
	f := func(s0, d0 uint16, q0, q1 uint16) bool {
		ix := Build(dom, base)
		s := model.Timestamp(s0) % 8192
		e := s + model.Timestamp(d0)%512
		if e > 8191 {
			e = 8191
		}
		extra := postings.Posting{ID: 9999, Interval: model.Interval{Start: s, End: e}}
		q := model.Canon(model.Timestamp(q0)%8192, model.Timestamp(q1)%8192)
		before := canon(ix.RangeQuery(q, nil))
		ix.Insert(extra)
		if !ix.Delete(extra) {
			return false
		}
		after := canon(ix.RangeQuery(q, nil))
		return model.EqualIDs(before, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: EntryCount is bounded by the theoretical replication limit of
// at most 2 partitions per level.
func TestReplicationBoundQuick(t *testing.T) {
	f := func(mRaw uint8, seed int64) bool {
		m := int(mRaw%10) + 1
		rng := rand.New(rand.NewSource(seed))
		entries := randomEntries(rng, 100, 0, 1<<14)
		ix := Build(domain.New(0, 1<<14, m), entries)
		return ix.EntryCount() <= int64(len(entries))*2*int64(m+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the level directory lookup agrees with a linear scan.
func TestLevelStoreQuick(t *testing.T) {
	f := func(keys []uint16, probe uint16) bool {
		var ls levelStore
		for _, k := range keys {
			p := ls.getOrCreate(uint32(k))
			if p == nil {
				return false
			}
		}
		// Directory stays sorted and deduplicated.
		for i := 1; i < len(ls.keys); i++ {
			if ls.keys[i] <= ls.keys[i-1] {
				return false
			}
		}
		want := false
		for _, k := range keys {
			if k == probe {
				want = true
			}
		}
		return (ls.get(uint32(probe)) != nil) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
