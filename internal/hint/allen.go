package hint

import (
	"math"

	"repro/internal/model"
	"repro/internal/postings"
)

// Relation is one of Allen's thirteen interval relations. The HINT journal
// version ([20] in the paper) extends range queries to all of them; this
// file reproduces that capability: each relation is answered by scoping a
// (cheap) overlap traversal to the smallest candidate range and applying
// the exact endpoint predicate.
type Relation int

// Allen's interval algebra, stated for a stored interval i against the
// query interval q.
const (
	// RelEquals: i.st == q.st && i.end == q.end
	RelEquals Relation = iota
	// RelBefore: i.end < q.st (i entirely precedes q)
	RelBefore
	// RelAfter: i.st > q.end
	RelAfter
	// RelMeets: i.end == q.st
	RelMeets
	// RelMetBy: i.st == q.end
	RelMetBy
	// RelOverlaps: i.st < q.st && q.st <= i.end && i.end < q.end
	RelOverlaps
	// RelOverlappedBy: q.st < i.st && i.st <= q.end && q.end < i.end
	RelOverlappedBy
	// RelStarts: i.st == q.st && i.end < q.end
	RelStarts
	// RelStartedBy: i.st == q.st && i.end > q.end
	RelStartedBy
	// RelDuring: i.st > q.st && i.end < q.end
	RelDuring
	// RelContains: i.st < q.st && i.end > q.end
	RelContains
	// RelFinishes: i.end == q.end && i.st > q.st
	RelFinishes
	// RelFinishedBy: i.end == q.end && i.st < q.st
	RelFinishedBy
)

// relationNames for String().
var relationNames = [...]string{
	"equals", "before", "after", "meets", "met-by",
	"overlaps", "overlapped-by", "starts", "started-by",
	"during", "contains", "finishes", "finished-by",
}

func (r Relation) String() string {
	if r < 0 || int(r) >= len(relationNames) {
		return "unknown"
	}
	return relationNames[r]
}

// Relations lists all thirteen, in declaration order.
func Relations() []Relation {
	out := make([]Relation, len(relationNames))
	for i := range out {
		out[i] = Relation(i)
	}
	return out
}

// Classify returns the unique relation in which stored interval i stands
// to q. The thirteen relations partition all pairs of closed discrete
// intervals: endpoint equalities are classified first (equals, starts,
// started-by, finishes, finished-by), then disjointness (before, after),
// then endpoint touches (meets, met-by — for closed discrete intervals a
// touch is endpoint equality, matching the HINT formulation), and the
// four strict orderings last (overlaps, overlapped-by, during, contains).
func Classify(i, q model.Interval) Relation {
	switch {
	case i.Start == q.Start && i.End == q.End:
		return RelEquals
	case i.Start == q.Start && i.End < q.End:
		return RelStarts
	case i.Start == q.Start:
		return RelStartedBy
	case i.End == q.End && i.Start > q.Start:
		return RelFinishes
	case i.End == q.End:
		return RelFinishedBy
	case i.End < q.Start:
		return RelBefore
	case i.Start > q.End:
		return RelAfter
	case i.End == q.Start:
		return RelMeets
	case i.Start == q.End:
		return RelMetBy
	case i.Start < q.Start && i.End < q.End:
		return RelOverlaps
	case i.Start > q.Start && i.End > q.End:
		return RelOverlappedBy
	case i.Start > q.Start && i.End < q.End:
		return RelDuring
	default: // i.Start < q.Start && i.End > q.End
		return RelContains
	}
}

// Holds reports whether i stands in relation r to q.
func (r Relation) Holds(i, q model.Interval) bool { return Classify(i, q) == r }

// farPast / farFuture scope the before/after candidate traversals. Disc
// clamps them onto the grid; exact comparisons keep results precise.
const (
	farPast   = model.Timestamp(math.MinInt64 / 4)
	farFuture = model.Timestamp(math.MaxInt64 / 4)
)

// candidateRange returns the overlap query that is guaranteed to cover
// every interval satisfying relation r against q.
func candidateRange(r Relation, q model.Interval) model.Interval {
	switch r {
	case RelBefore, RelMeets:
		// Candidates end at or before q.Start. Canon keeps the range
		// well-formed even for queries beyond the far-past bound.
		return model.Canon(farPast, q.Start)
	case RelAfter, RelMetBy:
		return model.Canon(q.End, farFuture)
	case RelOverlaps, RelStarts, RelEquals, RelFinishedBy, RelContains:
		// All touch q.Start.
		return model.NewInterval(q.Start, q.Start)
	case RelOverlappedBy, RelFinishes, RelStartedBy:
		// All touch q.End.
		return model.NewInterval(q.End, q.End)
	default: // RelDuring
		return q
	}
}

// AllenQuery returns the ids of all live intervals standing in relation r
// to q. Traversal cost matches a plain range query over the candidate
// range; the exact predicate prunes the remainder.
func (ix *Index) AllenQuery(r Relation, q model.Interval, dst []model.ObjectID) []model.ObjectID {
	ix.Finalize()
	cr := candidateRange(r, q)
	ix.VisitRelevant(cr, func(p *Partition, ob Obligations) {
		for _, div := range [][]postings.Posting{p.OIn, p.OAft} {
			dst = appendRelation(div, r, q, dst)
		}
		if ob.First {
			dst = appendRelation(p.RIn, r, q, dst)
			dst = appendRelation(p.RAft, r, q, dst)
		}
	})
	return dst
}

func appendRelation(s []postings.Posting, r Relation, q model.Interval, dst []model.ObjectID) []model.ObjectID {
	for i := range s {
		if !postings.IsDead(s[i].ID) && r.Holds(s[i].Interval, q) {
			dst = append(dst, s[i].ID)
		}
	}
	return dst
}
