package hint

import (
	"repro/internal/domain"
	"repro/internal/model"
)

// CostModelConfig parameterizes EstimateM.
type CostModelConfig struct {
	// ExtentFraction is the expected query extent as a fraction of the
	// domain (the paper's default workload uses 0.1%).
	ExtentFraction float64
	// MaxM bounds the search. Zero means domain.MaxBits capped at the
	// bits needed for one cell per domain unit.
	MaxM int
	// SampleSize bounds how many intervals are simulated (0 = 4096).
	SampleSize int
	// PartitionOverhead is the per-relevant-partition cost in
	// entry-scan equivalents (directory probe + cache line). 8 matches
	// the pointer-chasing cost observed in the original evaluation.
	PartitionOverhead float64
}

// DefaultCostModelConfig mirrors the paper's default query workload.
func DefaultCostModelConfig() CostModelConfig {
	return CostModelConfig{ExtentFraction: 0.001, SampleSize: 4096, PartitionOverhead: 8}
}

// EstimateM implements the spirit of the HINT cost model (Section 2.3 /
// [19]): pick the number of hierarchy bits m minimizing the expected
// query cost
//
//	cost(m) = sum_l entries_l(m) * P[touch | level l] + overhead * E[#relevant partitions]
//
// where entries_l(m) comes from simulating the assignment of a sample of
// the input on an m-bit grid, and an entry at level l is touched when the
// query's relevant range at that level covers its partition:
// P ~ min(1, extent + 2^(1-l)).
//
// Coarse grids put every interval in few, always-relevant partitions
// (many useless comparisons); fine grids replicate intervals across many
// levels and touch many partitions per level. The minimum sits between,
// growing with input size and shrinking with duration — the behaviour
// Section 5.2 relies on.
func EstimateM(intervals []model.Interval, span model.Interval, cfg CostModelConfig) int {
	if cfg.SampleSize == 0 {
		cfg.SampleSize = 4096
	}
	if cfg.ExtentFraction <= 0 {
		cfg.ExtentFraction = 0.001
	}
	if cfg.PartitionOverhead <= 0 {
		cfg.PartitionOverhead = 8
	}
	maxM := cfg.MaxM
	if maxM <= 0 || maxM > domain.MaxBits {
		maxM = 20
	}
	// Cap m so cells are not finer than single time units.
	spanUnits := int64(span.End-span.Start) + 1
	for maxM > 1 && int64(1)<<uint(maxM) > spanUnits {
		maxM--
	}
	sample := intervals
	if len(sample) > cfg.SampleSize {
		step := len(intervals) / cfg.SampleSize
		sample = make([]model.Interval, 0, cfg.SampleSize)
		for i := 0; i < len(intervals); i += step {
			sample = append(sample, intervals[i])
		}
	}
	if len(sample) == 0 {
		return 8
	}
	scale := float64(len(intervals)) / float64(len(sample))

	bestM, bestCost := 1, 0.0
	for m := 1; m <= maxM; m++ {
		dom, err := domain.Make(span.Start, span.End, m)
		if err != nil {
			break
		}
		probe := New(dom)
		perLevel := make([]float64, m+1)
		for _, iv := range sample {
			probe.visitAssignments(iv, func(level int, j uint32, original, endsInside bool) {
				perLevel[level]++
			})
		}
		cost := 0.0
		parts := 0.0
		for level := 0; level <= m; level++ {
			touch := cfg.ExtentFraction + 2.0/float64(uint64(1)<<uint(level))
			if touch > 1 {
				touch = 1
			}
			cost += perLevel[level] * scale * touch
			rel := cfg.ExtentFraction*float64(uint64(1)<<uint(level)) + 2
			if rel > float64(uint64(1)<<uint(level)) {
				rel = float64(uint64(1) << uint(level))
			}
			parts += rel
		}
		cost += cfg.PartitionOverhead * parts
		if m == 1 || cost < bestCost {
			bestM, bestCost = m, cost
		}
	}
	return bestM
}
