//go:build invariants

package hint

import (
	"testing"

	"repro/internal/model"
	"repro/internal/postings"
)

func TestInvariantsCompiledIn(t *testing.T) {
	if !InvariantsEnabled {
		t.Fatal("invariants tag set but InvariantsEnabled is false")
	}
}

func TestPartitionAssertionFires(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected invariant panic on unsorted OIn, got none")
		}
	}()
	p := &Partition{OIn: []postings.Posting{
		{ID: 1, Interval: model.NewInterval(10, 20)},
		{ID: 2, Interval: model.NewInterval(5, 9)},
	}}
	assertPartitionSorted(p, "test")
}

func TestTombstoneAssertionFires(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected invariant panic on tombstone entry, got none")
		}
	}()
	assertNoTombstoneEntries([]postings.Posting{{ID: 1, Interval: postings.Tombstone}}, "test")
}
