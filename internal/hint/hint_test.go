package hint

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/domain"
	"repro/internal/model"
	"repro/internal/postings"
)

func iv(s, e model.Timestamp) model.Interval { return model.Interval{Start: s, End: e} }

// naiveOverlap is the oracle for range queries.
func naiveOverlap(entries []postings.Posting, q model.Interval) []model.ObjectID {
	var out []model.ObjectID
	for _, p := range entries {
		if p.Interval.Overlaps(q) {
			out = append(out, p.ID)
		}
	}
	model.SortIDs(out)
	return out
}

func canon(ids []model.ObjectID) []model.ObjectID {
	out := append([]model.ObjectID(nil), ids...)
	model.SortIDs(out)
	return model.DedupIDs(out)
}

func randomEntries(rng *rand.Rand, n int, lo, hi model.Timestamp) []postings.Posting {
	span := int64(hi - lo + 1)
	entries := make([]postings.Posting, n)
	for i := range entries {
		s := lo + model.Timestamp(rng.Int63n(span))
		var d int64
		switch rng.Intn(8) {
		case 0:
			d = rng.Int63n(span / 2)
		case 1:
			d = 0
		default:
			d = rng.Int63n(span/16 + 1)
		}
		e := s + d
		if e > hi {
			e = hi
		}
		entries[i] = postings.Posting{ID: model.ObjectID(i), Interval: iv(s, e)}
	}
	return entries
}

func TestPaperFigure4Assignment(t *testing.T) {
	// Figure 4: m = 3, interval i spanning cells [1, 4] is assigned to
	// P3,1 (original), P2,1 and P3,4 (replicas).
	dom := domain.New(0, 7, 3) // one cell per unit
	ix := New(dom)
	type hit struct {
		level    int
		j        uint32
		original bool
	}
	var hits []hit
	ix.visitAssignments(iv(1, 4), func(level int, j uint32, original, endsInside bool) {
		hits = append(hits, hit{level, j, original})
	})
	want := map[hit]bool{
		{3, 1, true}:  true,
		{2, 1, false}: true,
		{3, 4, false}: true,
	}
	if len(hits) != len(want) {
		t.Fatalf("assignments = %v, want %v", hits, want)
	}
	for _, h := range hits {
		if !want[h] {
			t.Errorf("unexpected assignment %+v", h)
		}
	}
}

func TestAssignmentProperties(t *testing.T) {
	// (1) at most 2 partitions per level, (2) the union of partition
	// extents equals the discretized interval exactly, (3) exactly one
	// original.
	rng := rand.New(rand.NewSource(2))
	dom := domain.New(0, 1023, 7)
	ix := New(dom)
	for trial := 0; trial < 2000; trial++ {
		a := model.Timestamp(rng.Intn(1024))
		b := a + model.Timestamp(rng.Intn(int(1024-a)))
		perLevel := map[int]int{}
		covered := map[uint32]bool{}
		originals := 0
		ix.visitAssignments(iv(a, b), func(level int, j uint32, original, endsInside bool) {
			perLevel[level]++
			lo, hi := dom.PartitionExtent(level, j)
			for c := lo; c <= hi; c++ {
				if covered[c] {
					t.Fatalf("cell %d covered twice for [%d,%d]", c, a, b)
				}
				covered[c] = true
			}
			if original {
				originals++
			}
		})
		for level, n := range perLevel {
			if n > 2 {
				t.Fatalf("level %d got %d assignments for [%d,%d]", level, n, a, b)
			}
		}
		lo, hi := dom.DiscInterval(iv(a, b))
		for c := lo; c <= hi; c++ {
			if !covered[c] {
				t.Fatalf("cell %d not covered for [%d,%d]", c, a, b)
			}
		}
		if len(covered) != int(hi-lo+1) {
			t.Fatalf("covered cells outside the interval for [%d,%d]", a, b)
		}
		if originals != 1 {
			t.Fatalf("%d originals for [%d,%d], want 1", originals, a, b)
		}
	}
}

func TestRangeQueryOracleSmallDomain(t *testing.T) {
	// Exhaustive queries over a small domain catch every flag/parity case.
	for _, m := range []int{0, 1, 2, 3, 5} {
		rng := rand.New(rand.NewSource(int64(m)))
		entries := randomEntries(rng, 120, 0, 63)
		dom := domain.New(0, 63, m)
		ix := Build(dom, entries)
		for qs := model.Timestamp(0); qs <= 63; qs += 3 {
			for qe := qs; qe <= 63; qe += 5 {
				got := canon(ix.RangeQuery(iv(qs, qe), nil))
				want := naiveOverlap(entries, iv(qs, qe))
				if !model.EqualIDs(got, want) {
					t.Fatalf("m=%d q=[%d,%d]: got %v, want %v", m, qs, qe, got, want)
				}
			}
		}
	}
}

func TestRangeQueryOracleLargeDomain(t *testing.T) {
	for _, m := range []int{4, 8, 10, 14} {
		rng := rand.New(rand.NewSource(int64(m) * 7))
		entries := randomEntries(rng, 1500, 0, 1_000_000)
		dom := domain.New(0, 1_000_000, m)
		ix := Build(dom, entries)
		for trial := 0; trial < 400; trial++ {
			s := model.Timestamp(rng.Int63n(1_000_001))
			e := s + model.Timestamp(rng.Int63n(1_000_001-int64(s)+1))
			got := canon(ix.RangeQuery(iv(s, e), nil))
			want := naiveOverlap(entries, iv(s, e))
			if !model.EqualIDs(got, want) {
				t.Fatalf("m=%d q=[%d,%d]: got %d ids, want %d ids", m, s, e, len(got), len(want))
			}
		}
	}
}

func TestRangeQueryNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	entries := randomEntries(rng, 800, 0, 4095)
	ix := Build(domain.New(0, 4095, 9), entries)
	for trial := 0; trial < 200; trial++ {
		s := model.Timestamp(rng.Intn(4096))
		e := s + model.Timestamp(rng.Intn(4096-int(s)))
		got := ix.RangeQuery(iv(s, e), nil)
		seen := map[model.ObjectID]bool{}
		for _, id := range got {
			if seen[id] {
				t.Fatalf("duplicate id %d for q=[%d,%d]", id, s, e)
			}
			seen[id] = true
		}
	}
}

func TestQueryOutsideDomain(t *testing.T) {
	entries := []postings.Posting{
		{ID: 0, Interval: iv(10, 20)},
		{ID: 1, Interval: iv(90, 100)},
	}
	ix := Build(domain.New(0, 100, 4), entries)
	if got := ix.RangeQuery(iv(200, 300), nil); len(got) != 0 {
		t.Errorf("query beyond domain returned %v", got)
	}
	if got := ix.RangeQuery(iv(-50, -10), nil); len(got) != 0 {
		t.Errorf("query before domain returned %v", got)
	}
	got := canon(ix.RangeQuery(iv(-50, 300), nil))
	if !model.EqualIDs(got, []model.ObjectID{0, 1}) {
		t.Errorf("covering query returned %v", got)
	}
	// Query touching the clamped edge still compares real endpoints.
	if got := ix.RangeQuery(iv(101, 300), nil); len(got) != 0 {
		t.Errorf("query just past the last interval returned %v", got)
	}
}

func TestInsertMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	entries := randomEntries(rng, 500, 0, 9999)
	dom := domain.New(0, 9999, 8)
	bulk := Build(dom, entries)
	incr := New(dom)
	for _, p := range entries {
		incr.Insert(p)
	}
	for trial := 0; trial < 200; trial++ {
		s := model.Timestamp(rng.Intn(10000))
		e := s + model.Timestamp(rng.Intn(10000-int(s)))
		a := canon(bulk.RangeQuery(iv(s, e), nil))
		b := canon(incr.RangeQuery(iv(s, e), nil))
		if !model.EqualIDs(a, b) {
			t.Fatalf("bulk vs incremental mismatch at q=[%d,%d]", s, e)
		}
	}
	if bulk.Len() != incr.Len() || bulk.EntryCount() != incr.EntryCount() {
		t.Error("bulk and incremental disagree on Len/EntryCount")
	}
}

func TestSubdivisionSortInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	entries := randomEntries(rng, 600, 0, 8191)
	ix := Build(domain.New(0, 8191, 7), entries)
	// Insert more entries through the sorted path, then verify invariants.
	for i := 0; i < 200; i++ {
		s := model.Timestamp(rng.Intn(8192))
		e := s + model.Timestamp(rng.Intn(8192-int(s)))
		ix.Insert(postings.Posting{ID: model.ObjectID(1000 + i), Interval: iv(s, e)})
	}
	for l := range ix.levels {
		for _, p := range ix.levels[l].parts {
			if !sort.SliceIsSorted(p.OIn, func(i, j int) bool {
				return p.OIn[i].Interval.Start < p.OIn[j].Interval.Start
			}) {
				t.Fatal("OIn lost start order")
			}
			if !sort.SliceIsSorted(p.OAft, func(i, j int) bool {
				return p.OAft[i].Interval.Start < p.OAft[j].Interval.Start
			}) {
				t.Fatal("OAft lost start order")
			}
			if !sort.SliceIsSorted(p.RIn, func(i, j int) bool {
				return p.RIn[i].Interval.End < p.RIn[j].Interval.End
			}) {
				t.Fatal("RIn lost end order")
			}
		}
	}
	// Directory keys stay sorted too.
	for l := range ix.levels {
		if !sort.SliceIsSorted(ix.levels[l].keys, func(i, j int) bool {
			return ix.levels[l].keys[i] < ix.levels[l].keys[j]
		}) {
			t.Fatal("level directory lost key order")
		}
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	entries := randomEntries(rng, 400, 0, 4095)
	ix := Build(domain.New(0, 4095, 8), entries)
	dead := map[model.ObjectID]bool{}
	for i := 0; i < 100; i++ {
		victim := entries[rng.Intn(len(entries))]
		if !dead[victim.ID] {
			if !ix.Delete(victim) {
				t.Fatalf("Delete(%d) found nothing", victim.ID)
			}
			dead[victim.ID] = true
		}
	}
	if ix.Len() != len(entries)-len(dead) {
		t.Errorf("Len = %d, want %d", ix.Len(), len(entries)-len(dead))
	}
	var alive []postings.Posting
	for _, p := range entries {
		if !dead[p.ID] {
			alive = append(alive, p)
		}
	}
	for trial := 0; trial < 200; trial++ {
		s := model.Timestamp(rng.Intn(4096))
		e := s + model.Timestamp(rng.Intn(4096-int(s)))
		got := canon(ix.RangeQuery(iv(s, e), nil))
		want := naiveOverlap(alive, iv(s, e))
		if !model.EqualIDs(got, want) {
			t.Fatalf("after deletes q=[%d,%d]: got %v, want %v", s, e, got, want)
		}
	}
	// Deleting a missing entry reports false.
	if ix.Delete(postings.Posting{ID: 99999, Interval: iv(1, 2)}) {
		t.Error("Delete of missing entry reported success")
	}
}

func TestPointIntervalsAndPointQueries(t *testing.T) {
	var entries []postings.Posting
	for i := 0; i < 64; i++ {
		entries = append(entries, postings.Posting{ID: model.ObjectID(i), Interval: iv(model.Timestamp(i), model.Timestamp(i))})
	}
	ix := Build(domain.New(0, 63, 6), entries)
	for q := model.Timestamp(0); q < 64; q++ {
		got := canon(ix.RangeQuery(iv(q, q), nil))
		if len(got) != 1 || got[0] != model.ObjectID(q) {
			t.Fatalf("stab %d: got %v", q, got)
		}
	}
}

func TestEntryCountAndSize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	entries := randomEntries(rng, 300, 0, 1023)
	ix := Build(domain.New(0, 1023, 6), entries)
	if ix.EntryCount() < int64(len(entries)) {
		t.Errorf("EntryCount %d below input size", ix.EntryCount())
	}
	if ix.SizeBytes() <= 0 {
		t.Error("SizeBytes should be positive")
	}
	if ix.PartitionCount() <= 0 {
		t.Error("PartitionCount should be positive")
	}
}

func TestStabMatchesRange(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	entries := randomEntries(rng, 400, 0, 2047)
	ix := Build(domain.New(0, 2047, 7), entries)
	for trial := 0; trial < 200; trial++ {
		tp := model.Timestamp(rng.Intn(2048))
		got := canon(ix.Stab(tp, nil))
		want := naiveOverlap(entries, iv(tp, tp))
		if !model.EqualIDs(got, want) {
			t.Fatalf("Stab(%d): got %d, want %d ids", tp, len(got), len(want))
		}
	}
}

func TestCountRangeMatchesRangeQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	entries := randomEntries(rng, 500, 0, 4095)
	ix := Build(domain.New(0, 4095, 9), entries)
	// Also with deletions, which counts must respect.
	for i := 0; i < 60; i++ {
		ix.Delete(entries[rng.Intn(len(entries))])
	}
	for trial := 0; trial < 300; trial++ {
		q := model.Canon(model.Timestamp(rng.Intn(4096)), model.Timestamp(rng.Intn(4096)))
		got := ix.CountRange(q)
		want := len(canon(ix.RangeQuery(q, nil)))
		if got != want {
			t.Fatalf("CountRange(%v) = %d, RangeQuery found %d", q, got, want)
		}
	}
}

func TestEstimateM(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	span := iv(0, 1<<20)
	var short, long []model.Interval
	for i := 0; i < 3000; i++ {
		s := model.Timestamp(rng.Int63n(1 << 20))
		short = append(short, iv(s, s+model.Timestamp(rng.Intn(100))))
		e := s + model.Timestamp(rng.Int63n(1<<19))
		if e > span.End {
			e = span.End
		}
		long = append(long, iv(s, e))
	}
	cfg := DefaultCostModelConfig()
	mShort := EstimateM(short, span, cfg)
	mLong := EstimateM(long, span, cfg)
	if mShort < 1 || mShort > 20 || mLong < 1 || mLong > 20 {
		t.Fatalf("m out of range: short=%d long=%d", mShort, mLong)
	}
	// Long intervals replicate more; the model must not choose a finer
	// grid for them than for short ones.
	if mLong > mShort {
		t.Errorf("mLong=%d > mShort=%d", mLong, mShort)
	}
	if got := EstimateM(nil, span, cfg); got != 8 {
		t.Errorf("empty input default m = %d, want 8", got)
	}
}

func TestVisitFlagParity(t *testing.T) {
	// For a query covering the whole domain, f=0 and l=2^l-1 at every
	// level, so both flags must drop after the bottom level.
	dom := domain.New(0, 255, 4)
	var visits []LevelVisit
	Visit(dom, iv(0, 255), func(lv LevelVisit) { visits = append(visits, lv) })
	if len(visits) != 5 {
		t.Fatalf("visited %d levels, want 5", len(visits))
	}
	if !visits[0].CompFirst || !visits[0].CompLast {
		t.Error("bottom level must start with both flags set")
	}
	for _, lv := range visits[1:] {
		if lv.CompFirst || lv.CompLast {
			t.Errorf("level %d: flags should have dropped (f=%d l=%d)", lv.Level, lv.F, lv.L)
		}
	}
}

func TestObligations(t *testing.T) {
	lv := LevelVisit{Level: 3, F: 2, L: 5, CompFirst: true, CompLast: true}
	first := lv.Oblige(2)
	if !first.First || !first.CheckStart || first.CheckEnd {
		t.Errorf("first partition obligations = %+v", first)
	}
	last := lv.Oblige(5)
	if last.First || last.CheckStart || !last.CheckEnd {
		t.Errorf("last partition obligations = %+v", last)
	}
	mid := lv.Oblige(3)
	if mid.First || mid.CheckStart || mid.CheckEnd {
		t.Errorf("middle partition obligations = %+v", mid)
	}
	single := LevelVisit{F: 4, L: 4, CompFirst: true, CompLast: true}
	ob := single.Oblige(4)
	if !ob.First || !ob.CheckStart || !ob.CheckEnd {
		t.Errorf("single-partition obligations = %+v", ob)
	}
}
