// Package hint implements HINT, the state-of-the-art main-memory interval
// index of Christodoulou, Bouros & Mamoulis (Section 2.3 of the paper), in
// the subs+sort configuration the paper benchmarks: a hierarchy of 2^l
// uniform partitions per level l in [0, m], each partition split into the
// four subdivisions O_in, O_aft, R_in, R_aft with beneficial sorting, and
// bottom-up range queries that confine residual endpoint comparisons to at
// most four partitions (Algorithm 2).
//
// Discretized endpoints route intervals to partitions; the original
// timestamps are stored and compared, so results are exact at any grid
// resolution. Per level, only populated partitions are materialized (a
// sorted directory — the skewness & sparsity handling of the original
// paper), so a sparse per-element HINT with a handful of intervals costs a
// handful of allocations even at large m.
package hint

import (
	"sort"

	"repro/internal/domain"
	"repro/internal/model"
	"repro/internal/postings"
)

// Partition is one populated node of the hierarchy, split into the four
// subdivisions of the optimized HINT. Sorting invariants: OIn and OAft by
// interval start, RIn by interval end, RAft unsorted (never compared).
type Partition struct {
	OIn  []postings.Posting // originals ending inside the partition
	OAft []postings.Posting // originals ending after the partition
	RIn  []postings.Posting // replicas ending inside the partition
	RAft []postings.Posting // replicas ending after the partition
}

// entryCount returns the number of stored entries (including dead ones).
func (p *Partition) entryCount() int {
	return len(p.OIn) + len(p.OAft) + len(p.RIn) + len(p.RAft)
}

// levelStore is the per-level directory of populated partitions: keys holds
// partition indices sorted ascending, parts the matching partitions.
type levelStore struct {
	keys  []uint32
	parts []*Partition
}

func (ls *levelStore) get(j uint32) *Partition {
	i := sort.Search(len(ls.keys), func(i int) bool { return ls.keys[i] >= j })
	if i < len(ls.keys) && ls.keys[i] == j {
		return ls.parts[i]
	}
	return nil
}

func (ls *levelStore) getOrCreate(j uint32) *Partition {
	i := sort.Search(len(ls.keys), func(i int) bool { return ls.keys[i] >= j })
	if i < len(ls.keys) && ls.keys[i] == j {
		return ls.parts[i]
	}
	ls.keys = append(ls.keys, 0)
	ls.parts = append(ls.parts, nil)
	copy(ls.keys[i+1:], ls.keys[i:])
	copy(ls.parts[i+1:], ls.parts[i:])
	ls.keys[i] = j
	p := &Partition{}
	ls.parts[i] = p
	return p
}

// forRange calls fn for every populated partition with index in [f, l].
func (ls *levelStore) forRange(f, l uint32, fn func(j uint32, p *Partition)) {
	i := sort.Search(len(ls.keys), func(i int) bool { return ls.keys[i] >= f })
	for ; i < len(ls.keys) && ls.keys[i] <= l; i++ {
		fn(ls.keys[i], ls.parts[i])
	}
}

// Index is a HINT over intervals tagged with object ids.
type Index struct {
	dom    domain.Domain
	levels []levelStore // levels[l] for l in [0, m]
	live   int
	dirty  bool // bulk-loaded, subdivisions not yet sorted
}

// New builds an empty HINT over the given discretization domain.
func New(dom domain.Domain) *Index {
	return &Index{dom: dom, levels: make([]levelStore, dom.M+1)}
}

// Build bulk-loads a HINT from entries: assignment in append mode followed
// by one sort per subdivision. Entries keep their original timestamps.
func Build(dom domain.Domain, entries []postings.Posting) *Index {
	ix := New(dom)
	for _, p := range entries {
		ix.place(p)
	}
	ix.live = len(entries)
	ix.Finalize()
	return ix
}

// Domain returns the discretization domain.
func (ix *Index) Domain() domain.Domain { return ix.dom }

// M returns the number of hierarchy bits.
func (ix *Index) M() int { return ix.dom.M }

// Len returns the number of live intervals.
func (ix *Index) Len() int { return ix.live }

// place routes one entry to its at-most-two partitions per level without
// maintaining subdivision order (bulk path).
func (ix *Index) place(p postings.Posting) {
	ix.visitAssignments(p.Interval, func(level int, j uint32, original, endsInside bool) {
		part := ix.levels[level].getOrCreate(j)
		switch {
		case original && endsInside:
			part.OIn = append(part.OIn, p)
		case original:
			part.OAft = append(part.OAft, p)
		case endsInside:
			part.RIn = append(part.RIn, p)
		default:
			part.RAft = append(part.RAft, p)
		}
	})
	ix.dirty = true
}

// visitAssignments runs the HINT assignment of interval iv for this
// index's domain.
func (ix *Index) visitAssignments(iv model.Interval, fn func(level int, j uint32, original, endsInside bool)) {
	Assign(ix.dom, iv, fn)
}

// Assign runs the HINT assignment: it decomposes the discretized interval
// into the smallest set of partitions covering it (at most two per level,
// walking bottom-up and halving), calling fn for each with the
// original/replica classification (does the interval start in this
// partition?) and the ends-inside flag (the O_in/O_aft, R_in/R_aft split).
// Composite indices (the tIF+HINT variants and irHINT) share this routing
// while supplying their own partition payloads.
func Assign(dom domain.Domain, iv model.Interval, fn func(level int, j uint32, original, endsInside bool)) {
	lo, hi := dom.DiscInterval(iv)
	inside := func(level int, j uint32) bool {
		_, extentHi := dom.PartitionExtent(level, j)
		return hi <= extentHi
	}
	a, b := lo, hi
	for level := dom.M; level >= 0; level-- {
		if a == b {
			fn(level, a, dom.Prefix(level, lo) == a, inside(level, a))
			return
		}
		if a%2 == 1 {
			fn(level, a, dom.Prefix(level, lo) == a, inside(level, a))
			// lint:domain-ok a is odd so a+1 <= b <= Cells()-1 (a < b here: a == b returned above)
			a++
		}
		if b%2 == 0 {
			fn(level, b, dom.Prefix(level, lo) == b, inside(level, b))
			// lint:domain-ok b is even and > a >= 0, so b-1 >= 0
			b--
		}
		if a > b {
			return
		}
		// lint:domain-ok halving to the parent level keeps a in [0, 2^(level-1)-1]
		a >>= 1
		b >>= 1 // lint:domain-ok same halving argument as a
	}
}

// Finalize sorts every subdivision into its beneficial order after bulk
// loading. Idempotent.
//
// irlint:cold bulk-load finalization; a no-op dirty-flag check on the query path
func (ix *Index) Finalize() {
	if !ix.dirty {
		return
	}
	for l := range ix.levels {
		assertDirectorySorted(&ix.levels[l], "Finalize")
		for _, p := range ix.levels[l].parts {
			sortByStart(p.OIn)
			sortByStart(p.OAft)
			sortByEnd(p.RIn)
			assertPartitionSorted(p, "Finalize")
		}
	}
	ix.dirty = false
}

func sortByStart(s []postings.Posting) {
	sort.Slice(s, func(i, j int) bool { return s[i].Interval.Start < s[j].Interval.Start })
}

func sortByEnd(s []postings.Posting) {
	sort.Slice(s, func(i, j int) bool { return s[i].Interval.End < s[j].Interval.End })
}

// Append adds one interval in bulk-load mode: subdivision order is not
// maintained until Finalize runs. Use for construction; use Insert for
// the incremental update path.
func (ix *Index) Append(p postings.Posting) {
	ix.place(p)
	ix.live++
}

// Insert adds one interval, maintaining subdivision order with binary-
// search insertion (the update path of Section 5.5).
func (ix *Index) Insert(p postings.Posting) {
	assertNoTombstoneEntries([]postings.Posting{p}, "Insert")
	ix.visitAssignments(p.Interval, func(level int, j uint32, original, endsInside bool) {
		part := ix.levels[level].getOrCreate(j)
		switch {
		case original && endsInside:
			part.OIn = insertByStart(part.OIn, p)
		case original:
			part.OAft = insertByStart(part.OAft, p)
		case endsInside:
			part.RIn = insertByEnd(part.RIn, p)
		default:
			part.RAft = append(part.RAft, p)
		}
		assertPartitionSorted(part, "Insert")
	})
	ix.live++
}

func insertByStart(s []postings.Posting, p postings.Posting) []postings.Posting {
	i := sort.Search(len(s), func(i int) bool { return s[i].Interval.Start > p.Interval.Start })
	s = append(s, postings.Posting{})
	copy(s[i+1:], s[i:])
	s[i] = p
	return s
}

func insertByEnd(s []postings.Posting, p postings.Posting) []postings.Posting {
	i := sort.Search(len(s), func(i int) bool { return s[i].Interval.End > p.Interval.End })
	s = append(s, postings.Posting{})
	copy(s[i+1:], s[i:])
	s[i] = p
	return s
}

// Delete locates every copy of the entry (re-running the assignment) and
// sets the dead bit, leaving sort orders intact (logical deletion with
// tombstones, Section 5.5). It reports whether any copy was found live.
func (ix *Index) Delete(p postings.Posting) bool {
	ix.Finalize()
	found := false
	ix.visitAssignments(p.Interval, func(level int, j uint32, original, endsInside bool) {
		part := ix.levels[level].get(j)
		if part == nil {
			return
		}
		switch {
		case original && endsInside:
			found = killByStart(part.OIn, p) || found
		case original:
			found = killByStart(part.OAft, p) || found
		case endsInside:
			found = killByEnd(part.RIn, p) || found
		default:
			found = killScan(part.RAft, p) || found
		}
	})
	if found {
		ix.live--
	}
	return found
}

func killByStart(s []postings.Posting, p postings.Posting) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i].Interval.Start >= p.Interval.Start })
	for ; i < len(s) && s[i].Interval.Start == p.Interval.Start; i++ {
		if postings.LiveID(s[i].ID) == p.ID && !postings.IsDead(s[i].ID) {
			s[i].ID = postings.MarkDead(s[i].ID)
			return true
		}
	}
	return false
}

func killByEnd(s []postings.Posting, p postings.Posting) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i].Interval.End >= p.Interval.End })
	for ; i < len(s) && s[i].Interval.End == p.Interval.End; i++ {
		if postings.LiveID(s[i].ID) == p.ID && !postings.IsDead(s[i].ID) {
			s[i].ID = postings.MarkDead(s[i].ID)
			return true
		}
	}
	return false
}

func killScan(s []postings.Posting, p postings.Posting) bool {
	for i := range s {
		if postings.LiveID(s[i].ID) == p.ID && !postings.IsDead(s[i].ID) {
			s[i].ID = postings.MarkDead(s[i].ID)
			return true
		}
	}
	return false
}

// EntryCount returns the total number of stored entries across all
// partitions — the replication the size experiments track.
func (ix *Index) EntryCount() int64 {
	var total int64
	for l := range ix.levels {
		for _, p := range ix.levels[l].parts {
			total += int64(p.entryCount())
		}
	}
	return total
}

// SizeBytes estimates resident size: 16-byte entries, subdivision headers
// and the per-level directories.
func (ix *Index) SizeBytes() int64 {
	var total int64
	for l := range ix.levels {
		total += int64(cap(ix.levels[l].keys))*4 + int64(cap(ix.levels[l].parts))*8
		for _, p := range ix.levels[l].parts {
			total += int64(cap(p.OIn)+cap(p.OAft)+cap(p.RIn)+cap(p.RAft))*16 + 96
		}
	}
	return total
}

// PartitionCount returns the number of populated partitions (testing hook).
func (ix *Index) PartitionCount() int {
	n := 0
	for l := range ix.levels {
		n += len(ix.levels[l].keys)
	}
	return n
}
