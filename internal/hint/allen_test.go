package hint

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/domain"
	"repro/internal/model"
	"repro/internal/postings"
)

// Allen's relations must partition all interval pairs: every (i, q) pair
// stands in exactly one relation.
func TestRelationsPartitionPairs(t *testing.T) {
	f := func(a0, a1, b0, b1 int8) bool {
		i := model.Canon(model.Timestamp(a0), model.Timestamp(a1))
		q := model.Canon(model.Timestamp(b0), model.Timestamp(b1))
		r := Classify(i, q)
		count := 0
		for _, rel := range Relations() {
			if rel.Holds(i, q) {
				count++
				if rel != r {
					return false
				}
			}
		}
		return count == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestClassifyKnownCases(t *testing.T) {
	q := model.Interval{Start: 10, End: 20}
	tests := []struct {
		i    model.Interval
		want Relation
	}{
		{model.Interval{Start: 10, End: 20}, RelEquals},
		{model.Interval{Start: 0, End: 5}, RelBefore},
		{model.Interval{Start: 25, End: 30}, RelAfter},
		{model.Interval{Start: 0, End: 10}, RelMeets},
		{model.Interval{Start: 20, End: 30}, RelMetBy},
		{model.Interval{Start: 5, End: 15}, RelOverlaps},
		{model.Interval{Start: 15, End: 25}, RelOverlappedBy},
		{model.Interval{Start: 10, End: 15}, RelStarts},
		{model.Interval{Start: 10, End: 25}, RelStartedBy},
		{model.Interval{Start: 12, End: 18}, RelDuring},
		{model.Interval{Start: 5, End: 25}, RelContains},
		{model.Interval{Start: 15, End: 20}, RelFinishes},
		{model.Interval{Start: 5, End: 20}, RelFinishedBy},
	}
	seen := map[Relation]bool{}
	for _, tt := range tests {
		if got := Classify(tt.i, q); got != tt.want {
			t.Errorf("Classify(%v, %v) = %v, want %v", tt.i, q, got, tt.want)
		}
		seen[tt.want] = true
	}
	if len(seen) != 13 {
		t.Errorf("test covers %d relations, want all 13", len(seen))
	}
	if RelEquals.String() != "equals" || Relation(99).String() != "unknown" {
		t.Error("String() misbehaved")
	}
}

func TestAllenQueryOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	entries := randomEntries(rng, 600, 0, 2047)
	for _, m := range []int{3, 6, 9} {
		ix := Build(domain.New(0, 2047, m), entries)
		for trial := 0; trial < 60; trial++ {
			q := model.Canon(model.Timestamp(rng.Intn(2048)), model.Timestamp(rng.Intn(2048)))
			for _, rel := range Relations() {
				got := canon(ix.AllenQuery(rel, q, nil))
				var want []model.ObjectID
				for _, p := range entries {
					if rel.Holds(p.Interval, q) {
						want = append(want, p.ID)
					}
				}
				model.SortIDs(want)
				if !model.EqualIDs(got, want) {
					t.Fatalf("m=%d rel=%v q=%v: got %d ids, want %d ids", m, rel, q, len(got), len(want))
				}
			}
		}
	}
}

func TestAllenQueryNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	entries := randomEntries(rng, 500, 0, 1023)
	ix := Build(domain.New(0, 1023, 7), entries)
	for trial := 0; trial < 40; trial++ {
		q := model.Canon(model.Timestamp(rng.Intn(1024)), model.Timestamp(rng.Intn(1024)))
		for _, rel := range Relations() {
			got := ix.AllenQuery(rel, q, nil)
			seen := map[model.ObjectID]bool{}
			for _, id := range got {
				if seen[id] {
					t.Fatalf("rel=%v q=%v: duplicate id %d", rel, q, id)
				}
				seen[id] = true
			}
		}
	}
}

// Every stored interval must be reported by exactly one relation for any
// query — the index-level counterpart of the partition property.
func TestAllenQueryCoversEveryInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	entries := randomEntries(rng, 400, 0, 511)
	ix := Build(domain.New(0, 511, 6), entries)
	for trial := 0; trial < 30; trial++ {
		q := model.Canon(model.Timestamp(rng.Intn(512)), model.Timestamp(rng.Intn(512)))
		counts := map[model.ObjectID]int{}
		for _, rel := range Relations() {
			for _, id := range ix.AllenQuery(rel, q, nil) {
				counts[id]++
			}
		}
		if len(counts) != len(entries) {
			t.Fatalf("q=%v: %d of %d intervals reported", q, len(counts), len(entries))
		}
		for id, n := range counts {
			if n != 1 {
				t.Fatalf("q=%v: id %d reported by %d relations", q, id, n)
			}
		}
	}
}

func TestAllenQuerySkipsDead(t *testing.T) {
	entries := []postings.Posting{
		{ID: 0, Interval: iv(10, 20)},
		{ID: 1, Interval: iv(10, 20)},
	}
	ix := Build(domain.New(0, 63, 4), entries)
	ix.Delete(entries[0])
	got := canon(ix.AllenQuery(RelEquals, iv(10, 20), nil))
	if !model.EqualIDs(got, []model.ObjectID{1}) {
		t.Errorf("got %v", got)
	}
}

func TestAllenRangeEquivalence(t *testing.T) {
	// The union of the nine "overlapping" relations must equal RangeQuery.
	rng := rand.New(rand.NewSource(34))
	entries := randomEntries(rng, 500, 0, 1023)
	ix := Build(domain.New(0, 1023, 8), entries)
	overlapping := []Relation{
		RelEquals, RelMeets, RelMetBy, RelOverlaps, RelOverlappedBy,
		RelStarts, RelStartedBy, RelDuring, RelContains, RelFinishes, RelFinishedBy,
	}
	for trial := 0; trial < 50; trial++ {
		q := model.Canon(model.Timestamp(rng.Intn(1024)), model.Timestamp(rng.Intn(1024)))
		var union []model.ObjectID
		for _, rel := range overlapping {
			union = ix.AllenQuery(rel, q, union)
		}
		model.SortIDs(union)
		want := canon(ix.RangeQuery(q, nil))
		if !model.EqualIDs(union, want) {
			t.Fatalf("q=%v: union %d ids, range %d ids", q, len(union), len(want))
		}
	}
}

func TestAllenQueryAfterUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	entries := randomEntries(rng, 300, 0, 1023)
	ix := Build(domain.New(0, 1023, 6), entries)
	// Insert fresh intervals and delete a batch, then re-verify every
	// relation against the live set.
	var extra []postings.Posting
	for i := 0; i < 80; i++ {
		s := model.Timestamp(rng.Intn(1024))
		e := s + model.Timestamp(rng.Intn(1024-int(s)))
		p := postings.Posting{ID: model.ObjectID(5000 + i), Interval: iv(s, e)}
		extra = append(extra, p)
		ix.Insert(p)
	}
	dead := map[model.ObjectID]bool{}
	for i := 0; i < 60; i++ {
		victim := entries[rng.Intn(len(entries))]
		if !dead[victim.ID] {
			ix.Delete(victim)
			dead[victim.ID] = true
		}
	}
	var live []postings.Posting
	for _, p := range entries {
		if !dead[p.ID] {
			live = append(live, p)
		}
	}
	live = append(live, extra...)
	for trial := 0; trial < 20; trial++ {
		q := model.Canon(model.Timestamp(rng.Intn(1024)), model.Timestamp(rng.Intn(1024)))
		for _, rel := range Relations() {
			got := canon(ix.AllenQuery(rel, q, nil))
			var want []model.ObjectID
			for _, p := range live {
				if rel.Holds(p.Interval, q) {
					want = append(want, p.ID)
				}
			}
			model.SortIDs(want)
			if !model.EqualIDs(got, want) {
				t.Fatalf("rel=%v q=%v after updates: got %d, want %d ids", rel, q, len(got), len(want))
			}
		}
	}
}

func TestRangeQueryTopDownEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	entries := randomEntries(rng, 700, 0, 4095)
	ix := Build(domain.New(0, 4095, 9), entries)
	for trial := 0; trial < 200; trial++ {
		q := model.Canon(model.Timestamp(rng.Intn(4096)), model.Timestamp(rng.Intn(4096)))
		a := canon(ix.RangeQuery(q, nil))
		b := canon(ix.RangeQueryTopDown(q, nil))
		if !model.EqualIDs(a, b) {
			t.Fatalf("q=%v: bottom-up %d ids, top-down %d ids", q, len(a), len(b))
		}
	}
}
