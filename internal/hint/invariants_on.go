//go:build invariants

package hint

import (
	"fmt"

	"repro/internal/postings"
)

// InvariantsEnabled reports whether the runtime assertion layer is
// compiled in (the `invariants` build tag, exercised by CI).
const InvariantsEnabled = true

// assertPartitionSorted panics when a partition's subdivisions violate
// HINT's beneficial sorting: OIn and OAft ascending by interval start,
// RIn ascending by interval end (RAft is never compared and may stay
// unsorted). Compiled out of normal builds.
func assertPartitionSorted(p *Partition, context string) {
	for i := 1; i < len(p.OIn); i++ {
		if p.OIn[i-1].Interval.Start > p.OIn[i].Interval.Start {
			// lint:panic-ok invariants build: broken beneficial sorting must abort loudly
			panic(fmt.Sprintf("hint: invariant violated: OIn unsorted at %d in %s", i, context))
		}
	}
	for i := 1; i < len(p.OAft); i++ {
		if p.OAft[i-1].Interval.Start > p.OAft[i].Interval.Start {
			// lint:panic-ok invariants build: broken beneficial sorting must abort loudly
			panic(fmt.Sprintf("hint: invariant violated: OAft unsorted at %d in %s", i, context))
		}
	}
	for i := 1; i < len(p.RIn); i++ {
		if p.RIn[i-1].Interval.End > p.RIn[i].Interval.End {
			// lint:panic-ok invariants build: broken beneficial sorting must abort loudly
			panic(fmt.Sprintf("hint: invariant violated: RIn unsorted at %d in %s", i, context))
		}
	}
}

// assertDirectorySorted panics when a level directory's partition keys are
// not strictly ascending — the precondition of every binary-search lookup
// and forRange scan. Compiled out of normal builds.
func assertDirectorySorted(ls *levelStore, context string) {
	for i := 1; i < len(ls.keys); i++ {
		if ls.keys[i-1] >= ls.keys[i] {
			// lint:panic-ok invariants build: broken directory order must abort loudly
			panic(fmt.Sprintf("hint: invariant violated: directory keys not strictly ascending at %d in %s", i, context))
		}
	}
}

// assertNoTombstoneEntries panics when a subdivision stores the postings
// tombstone sentinel: HINT subdivisions flag deletions through the dead
// bit, never by rewriting intervals (that would break the sort order).
func assertNoTombstoneEntries(s []postings.Posting, context string) {
	for i := range s {
		if postings.IsTombstone(s[i].Interval) {
			// lint:panic-ok invariants build: sentinel leakage must abort loudly
			panic(fmt.Sprintf("hint: invariant violated: tombstone sentinel stored at %d in %s", i, context))
		}
	}
}
