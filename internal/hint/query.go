package hint

import (
	"sort"

	"repro/internal/domain"
	"repro/internal/model"
	"repro/internal/postings"
)

// Obligations captures the residual comparisons Algorithm 2 prescribes for
// one relevant partition during the bottom-up traversal.
//
// For originals: CheckStart means "verify q.start <= o.end" and CheckEnd
// means "verify o.start <= q.end". Replicas are consulted only at the first
// relevant partition of a level, need CheckStart exactly when the originals
// do and never need CheckEnd (a replica starts before the partition that
// contains q.start, hence before q.end).
type Obligations struct {
	First      bool // j == f: include replica subdivisions
	CheckStart bool
	CheckEnd   bool
}

// LevelVisit describes one hierarchy level of the traversal: the range of
// relevant partitions [F, L] and the current comparison flags.
type LevelVisit struct {
	Level     int
	F, L      uint32
	CompFirst bool
	CompLast  bool
}

// Oblige derives the comparison obligations for relevant partition j of
// this level, encoding the case analysis of Algorithm 2 lines 8-22.
func (lv LevelVisit) Oblige(j uint32) Obligations {
	switch {
	case j == lv.F:
		return Obligations{
			First:      true,
			CheckStart: lv.CompFirst,
			CheckEnd:   lv.F == lv.L && lv.CompLast,
		}
	case j == lv.L:
		return Obligations{CheckEnd: lv.CompLast}
	default:
		return Obligations{}
	}
}

// Visit runs the bottom-up traversal of Algorithm 2 over an arbitrary
// partition store: for each level from m down to 0 it reports the relevant
// partition range and comparison flags, updating the compfirst/complast
// flags by the parity rule (lines 23-26). Composite indices (irHINT, the
// tIF+HINT variants) share this walk while supplying their own per-
// partition payloads.
func Visit(dom domain.Domain, q model.Interval, fn func(LevelVisit)) {
	qlo, qhi := dom.DiscInterval(q)
	compFirst, compLast := true, true
	for level := dom.M; level >= 0; level-- {
		f := dom.Prefix(level, qlo)
		l := dom.Prefix(level, qhi)
		fn(LevelVisit{Level: level, F: f, L: l, CompFirst: compFirst, CompLast: compLast})
		if f%2 == 0 {
			compFirst = false
		}
		if l%2 == 1 {
			compLast = false
		}
	}
}

// RangeQuery returns the ids of all live intervals overlapping q
// (Algorithm 2 with the subs+sort subdivisions). The output order is the
// traversal order, not id order; each id appears exactly once.
//
// irlint:hot the HINT traversal every HINT-backed method pays per query
func (ix *Index) RangeQuery(q model.Interval, dst []model.ObjectID) []model.ObjectID {
	ix.Finalize()
	Visit(ix.dom, q, func(lv LevelVisit) {
		ix.levels[lv.Level].forRange(lv.F, lv.L, func(j uint32, p *Partition) {
			dst = reportPartition(p, lv.Oblige(j), q, dst)
		})
	})
	return dst
}

// reportPartition appends the qualifying live ids of one partition given
// its comparison obligations.
func reportPartition(p *Partition, ob Obligations, q model.Interval, dst []model.ObjectID) []model.ObjectID {
	// Originals.
	switch {
	case ob.CheckStart && ob.CheckEnd:
		// O_in: start-prefix via binary search, per-entry end check.
		dst = appendStartPrefixEndCheck(p.OIn, q, dst)
		// O_aft ends after the partition holding q.start: end check free.
		dst = appendStartPrefix(p.OAft, q.End, dst)
	case ob.CheckStart:
		// Entries may start anywhere up to partition end <= q.end: start
		// order does not bound the end check, so O_in is scanned.
		dst = appendEndCheck(p.OIn, q.Start, dst)
		dst = appendAll(p.OAft, dst)
	case ob.CheckEnd:
		dst = appendStartPrefix(p.OIn, q.End, dst)
		dst = appendStartPrefix(p.OAft, q.End, dst)
	default:
		dst = appendAll(p.OIn, dst)
		dst = appendAll(p.OAft, dst)
	}
	if !ob.First {
		return dst
	}
	// Replicas: never need the end check.
	if ob.CheckStart {
		dst = appendEndSuffix(p.RIn, q.Start, dst)
	} else {
		dst = appendAll(p.RIn, dst)
	}
	return appendAll(p.RAft, dst)
}

// Stab returns the ids of all live intervals containing the time point t —
// the stabbing query of Berberich et al.'s original time-travel setting
// (footnote 6 of the paper), a degenerate range query.
func (ix *Index) Stab(t model.Timestamp, dst []model.ObjectID) []model.ObjectID {
	return ix.RangeQuery(model.NewInterval(t, t), dst)
}

// CountRange returns the number of live intervals overlapping q without
// materializing ids — the counting variant HINT supports by summing
// division cardinalities wherever no comparisons are needed.
func (ix *Index) CountRange(q model.Interval) int {
	ix.Finalize()
	total := 0
	Visit(ix.dom, q, func(lv LevelVisit) {
		ix.levels[lv.Level].forRange(lv.F, lv.L, func(j uint32, p *Partition) {
			total += countPartition(p, lv.Oblige(j), q)
		})
	})
	return total
}

func countPartition(p *Partition, ob Obligations, q model.Interval) int {
	n := 0
	switch {
	case ob.CheckStart && ob.CheckEnd:
		cut := sort.Search(len(p.OIn), func(i int) bool { return p.OIn[i].Interval.Start > q.End })
		for i := 0; i < cut; i++ {
			if p.OIn[i].Interval.End >= q.Start && !postings.IsDead(p.OIn[i].ID) {
				n++
			}
		}
		n += countLivePrefix(p.OAft, q.End)
	case ob.CheckStart:
		for i := range p.OIn {
			if p.OIn[i].Interval.End >= q.Start && !postings.IsDead(p.OIn[i].ID) {
				n++
			}
		}
		n += countLive(p.OAft)
	case ob.CheckEnd:
		n += countLivePrefix(p.OIn, q.End)
		n += countLivePrefix(p.OAft, q.End)
	default:
		n += countLive(p.OIn) + countLive(p.OAft)
	}
	if !ob.First {
		return n
	}
	if ob.CheckStart {
		lo := sort.Search(len(p.RIn), func(i int) bool { return p.RIn[i].Interval.End >= q.Start })
		for i := lo; i < len(p.RIn); i++ {
			if !postings.IsDead(p.RIn[i].ID) {
				n++
			}
		}
	} else {
		n += countLive(p.RIn)
	}
	return n + countLive(p.RAft)
}

func countLive(s []postings.Posting) int {
	n := 0
	for i := range s {
		if !postings.IsDead(s[i].ID) {
			n++
		}
	}
	return n
}

func countLivePrefix(s []postings.Posting, qEnd model.Timestamp) int {
	cut := sort.Search(len(s), func(i int) bool { return s[i].Interval.Start > qEnd })
	n := 0
	for i := 0; i < cut; i++ {
		if !postings.IsDead(s[i].ID) {
			n++
		}
	}
	return n
}

// RangeQueryTopDown answers the same range queries as RangeQuery but with
// the conventional top-down traversal the paper contrasts against: no
// compfirst/complast bookkeeping, so the first and last relevant partition
// of EVERY level performs endpoint comparisons. It exists for the
// bottom-up ablation benchmark; results are identical.
func (ix *Index) RangeQueryTopDown(q model.Interval, dst []model.ObjectID) []model.ObjectID {
	ix.Finalize()
	qlo, qhi := ix.dom.DiscInterval(q)
	for level := 0; level <= ix.dom.M; level++ {
		f := ix.dom.Prefix(level, qlo)
		l := ix.dom.Prefix(level, qhi)
		ix.levels[level].forRange(f, l, func(j uint32, p *Partition) {
			ob := Obligations{
				First:      j == f,
				CheckStart: j == f,
				CheckEnd:   j == l,
			}
			dst = reportPartition(p, ob, q, dst)
		})
	}
	return dst
}

// VisitRelevant walks the relevant partitions of a range query bottom-up,
// reporting each populated partition with its comparison obligations.
// Composite indices use this to run Algorithm 3-style probes against the
// subdivisions directly.
func (ix *Index) VisitRelevant(q model.Interval, fn func(p *Partition, ob Obligations)) {
	ix.Finalize()
	Visit(ix.dom, q, func(lv LevelVisit) {
		ix.levels[lv.Level].forRange(lv.F, lv.L, func(j uint32, p *Partition) {
			fn(p, lv.Oblige(j))
		})
	})
}

// RangeQueryFiltered is RangeQuery restricted to ids satisfying pred —
// the binary-search candidate probe of Algorithm 3, where pred tests
// membership in the sorted candidate set.
//
// irlint:hot the Algorithm 3 probe path of the tIF+HINT hybrid methods
func (ix *Index) RangeQueryFiltered(q model.Interval, pred func(model.ObjectID) bool, dst []model.ObjectID) []model.ObjectID {
	ix.VisitRelevant(q, func(p *Partition, ob Obligations) {
		dst = reportPartitionFiltered(p, ob, q, pred, dst)
	})
	return dst
}

// reportPartitionFiltered mirrors reportPartition with a per-id predicate.
func reportPartitionFiltered(p *Partition, ob Obligations, q model.Interval, pred func(model.ObjectID) bool, dst []model.ObjectID) []model.ObjectID {
	emit := func(s []postings.Posting, lo, cut int, needEnd bool) {
		for i := lo; i < cut; i++ {
			if needEnd && s[i].Interval.End < q.Start {
				continue
			}
			if !postings.IsDead(s[i].ID) && pred(s[i].ID) {
				dst = append(dst, s[i].ID)
			}
		}
	}
	startCut := func(s []postings.Posting) int {
		return sort.Search(len(s), func(i int) bool { return s[i].Interval.Start > q.End })
	}
	endLo := func(s []postings.Posting) int {
		return sort.Search(len(s), func(i int) bool { return s[i].Interval.End >= q.Start })
	}
	switch {
	case ob.CheckStart && ob.CheckEnd:
		emit(p.OIn, 0, startCut(p.OIn), true)
		emit(p.OAft, 0, startCut(p.OAft), false)
	case ob.CheckStart:
		emit(p.OIn, 0, len(p.OIn), true)
		emit(p.OAft, 0, len(p.OAft), false)
	case ob.CheckEnd:
		emit(p.OIn, 0, startCut(p.OIn), false)
		emit(p.OAft, 0, startCut(p.OAft), false)
	default:
		emit(p.OIn, 0, len(p.OIn), false)
		emit(p.OAft, 0, len(p.OAft), false)
	}
	if !ob.First {
		return dst
	}
	if ob.CheckStart {
		emit(p.RIn, endLo(p.RIn), len(p.RIn), false)
	} else {
		emit(p.RIn, 0, len(p.RIn), false)
	}
	emit(p.RAft, 0, len(p.RAft), false)
	return dst
}

// RangeQueryFilteredBitmap is RangeQueryFiltered with the candidate
// membership test inlined as a packed-bitmap word probe: O(1) per entry
// instead of a binary search or an indirect predicate call. The body
// mirrors reportPartitionFiltered; the duplication buys a direct word
// test in the innermost loop of the Algorithm 3 probe path.
//
// irlint:hot the bitmap-container probe path for dense candidate sets
func (ix *Index) RangeQueryFilteredBitmap(q model.Interval, bm *postings.Bitmap, dst []model.ObjectID) []model.ObjectID {
	ix.VisitRelevant(q, func(p *Partition, ob Obligations) {
		dst = reportPartitionBitmap(p, ob, q, bm, dst)
	})
	return dst
}

// reportPartitionBitmap mirrors reportPartitionFiltered with a bitmap
// membership probe per id.
func reportPartitionBitmap(p *Partition, ob Obligations, q model.Interval, bm *postings.Bitmap, dst []model.ObjectID) []model.ObjectID {
	emit := func(s []postings.Posting, lo, cut int, needEnd bool) {
		for i := lo; i < cut; i++ {
			if needEnd && s[i].Interval.End < q.Start {
				continue
			}
			if !postings.IsDead(s[i].ID) && bm.Contains(s[i].ID) {
				dst = append(dst, s[i].ID)
			}
		}
	}
	startCut := func(s []postings.Posting) int {
		return sort.Search(len(s), func(i int) bool { return s[i].Interval.Start > q.End })
	}
	endLo := func(s []postings.Posting) int {
		return sort.Search(len(s), func(i int) bool { return s[i].Interval.End >= q.Start })
	}
	switch {
	case ob.CheckStart && ob.CheckEnd:
		emit(p.OIn, 0, startCut(p.OIn), true)
		emit(p.OAft, 0, startCut(p.OAft), false)
	case ob.CheckStart:
		emit(p.OIn, 0, len(p.OIn), true)
		emit(p.OAft, 0, len(p.OAft), false)
	case ob.CheckEnd:
		emit(p.OIn, 0, startCut(p.OIn), false)
		emit(p.OAft, 0, startCut(p.OAft), false)
	default:
		emit(p.OIn, 0, len(p.OIn), false)
		emit(p.OAft, 0, len(p.OAft), false)
	}
	if !ob.First {
		return dst
	}
	if ob.CheckStart {
		emit(p.RIn, endLo(p.RIn), len(p.RIn), false)
	} else {
		emit(p.RIn, 0, len(p.RIn), false)
	}
	emit(p.RAft, 0, len(p.RAft), false)
	return dst
}

// appendAll copies every live id.
func appendAll(s []postings.Posting, dst []model.ObjectID) []model.ObjectID {
	for i := range s {
		if !postings.IsDead(s[i].ID) {
			dst = append(dst, s[i].ID)
		}
	}
	return dst
}

// appendStartPrefix copies live ids from the start-sorted prefix with
// Start <= qEnd.
func appendStartPrefix(s []postings.Posting, qEnd model.Timestamp, dst []model.ObjectID) []model.ObjectID {
	cut := sort.Search(len(s), func(i int) bool { return s[i].Interval.Start > qEnd })
	for i := 0; i < cut; i++ {
		if !postings.IsDead(s[i].ID) {
			dst = append(dst, s[i].ID)
		}
	}
	return dst
}

// appendStartPrefixEndCheck is appendStartPrefix plus a per-entry
// End >= q.Start test (the first==last partition case for O_in).
func appendStartPrefixEndCheck(s []postings.Posting, q model.Interval, dst []model.ObjectID) []model.ObjectID {
	cut := sort.Search(len(s), func(i int) bool { return s[i].Interval.Start > q.End })
	for i := 0; i < cut; i++ {
		if s[i].Interval.End >= q.Start && !postings.IsDead(s[i].ID) {
			dst = append(dst, s[i].ID)
		}
	}
	return dst
}

// appendEndCheck scans s copying live ids with End >= qStart.
func appendEndCheck(s []postings.Posting, qStart model.Timestamp, dst []model.ObjectID) []model.ObjectID {
	for i := range s {
		if s[i].Interval.End >= qStart && !postings.IsDead(s[i].ID) {
			dst = append(dst, s[i].ID)
		}
	}
	return dst
}

// appendEndSuffix copies live ids from the end-sorted suffix with
// End >= qStart (the R_in case).
func appendEndSuffix(s []postings.Posting, qStart model.Timestamp, dst []model.ObjectID) []model.ObjectID {
	lo := sort.Search(len(s), func(i int) bool { return s[i].Interval.End >= qStart })
	for i := lo; i < len(s); i++ {
		if !postings.IsDead(s[i].ID) {
			dst = append(dst, s[i].ID)
		}
	}
	return dst
}
