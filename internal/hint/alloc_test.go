package hint

import (
	"math/rand"
	"testing"

	"repro/internal/allocbudget"
	"repro/internal/domain"
	"repro/internal/model"
)

// TestAllocBudget pins the steady-state allocation behavior of the HINT
// range query, the kernel every HINT-backed method pays per query. With
// a reused dst the growth amortizes to zero. `make benchmem` re-records.
func TestAllocBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ix := Build(domain.New(0, 1<<22, 12), randomEntries(rng, 100_000, 0, 1<<22))
	queries := make([]model.Interval, 1024)
	for i := range queries {
		s := model.Timestamp(rng.Int63n(1 << 22))
		queries[i] = model.Interval{Start: s, End: s + 4096}
	}

	allocbudget.Gate(t, "hint/Index.RangeQuery", func(b *testing.B) {
		var dst []model.ObjectID
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = ix.RangeQuery(queries[i%len(queries)], dst[:0])
		}
	})
}
