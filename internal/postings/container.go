package postings

import (
	"math/bits"
	"slices"
	"sync"

	"repro/internal/model"
)

// Roaring-style hybrid containers for candidate intersections: sorted id
// slices (the array container every index already uses) stay the
// representation for sparse sets, while dense sets switch to a packed
// []uint64 bitmap whose AND/OR/ANDNOT kernels process 64 ids per word.
// Skewed array/array pairs use galloping (exponential) search instead of
// a full merge. IntersectAnySorted and List.IntersectAny are the
// container-aware dispatchers the hot paths call.

// BitmapCutoff is the candidate-set size at which intersections switch
// from the positional keep-mask / merge representation to the packed
// bitmap, mirroring roaring's 4096 array/bitmap threshold. It is a
// variable (not a constant) so differential tests can lower it and force
// the bitmap path onto small seeded workloads.
var BitmapCutoff = 4096

// GallopRatio is the size skew at which a merge intersection switches to
// galloping search probes of the larger side: |large| > GallopRatio *
// |small|. Tests lower it to force the galloping path.
var GallopRatio = 32

// Bitmap is a packed bitset over the dense internal object-id space.
// Word i bit b represents id i*64+b. The zero value is an empty bitmap.
type Bitmap struct {
	words []uint64
}

// Reset sizes the bitmap to hold ids in [0, universe) and clears every
// bit. Growth is amortized: a pooled bitmap reaches the largest universe
// it has served and is then reused allocation-free.
func (b *Bitmap) Reset(universe model.ObjectID) {
	nw := int(universe+63) / 64
	if cap(b.words) < nw {
		b.grow(nw)
	}
	b.words = b.words[:nw]
	clear(b.words)
}

// grow reallocates the word slice. Noinline so the rare growth
// allocation stays attributed to this line instead of being inlined
// into every hot Reset call.
//
//go:noinline
func (b *Bitmap) grow(nw int) {
	// lint:alloc-ok pooled bitmap grows to the largest universe seen, then is reused across queries
	b.words = make([]uint64, nw)
}

// Set marks id. Ids at or beyond the sized universe are ignored — the
// marking paths probe division entries whose ids may exceed the largest
// candidate, and those can never survive a candidate compaction anyway.
//
// irlint:hot bitmap mark, runs per division entry per query
func (b *Bitmap) Set(id model.ObjectID) {
	w := int(id >> 6)
	if w < len(b.words) {
		b.words[w] |= 1 << (id & 63)
	}
}

// Contains reports whether id is set. Out-of-universe ids report false.
//
// irlint:hot bitmap membership probe, runs per candidate per query
func (b *Bitmap) Contains(id model.ObjectID) bool {
	w := int(id >> 6)
	return w < len(b.words) && b.words[w]&(1<<(id&63)) != 0
}

// SetSorted resets the bitmap to cover ids and marks each one. ids must
// be ascending; an empty slice yields an empty bitmap.
func (b *Bitmap) SetSorted(ids []model.ObjectID) {
	if len(ids) == 0 {
		b.Reset(0)
		return
	}
	assertSortedIDs(ids, "Bitmap.SetSorted")
	b.Reset(ids[len(ids)-1] + 1)
	for _, id := range ids {
		b.words[id>>6] |= 1 << (id & 63)
	}
}

// And intersects b with o word-parallel: bits beyond o's universe clear.
//
// irlint:hot word-parallel AND kernel over candidate bitmaps
func (b *Bitmap) And(o *Bitmap) {
	n := min(len(b.words), len(o.words))
	for i := 0; i < n; i++ {
		b.words[i] &= o.words[i]
	}
	clear(b.words[n:])
}

// Or unions o into b word-parallel. o must not exceed b's universe
// (union paths mark into a bitmap sized for the full candidate set).
//
// irlint:hot word-parallel OR kernel over per-chunk candidate bitmaps
func (b *Bitmap) Or(o *Bitmap) {
	n := min(len(b.words), len(o.words))
	for i := 0; i < n; i++ {
		b.words[i] |= o.words[i]
	}
}

// AndNot clears every bit of b that is set in o, word-parallel.
//
// irlint:hot word-parallel ANDNOT kernel for tombstone subtraction
func (b *Bitmap) AndNot(o *Bitmap) {
	n := min(len(b.words), len(o.words))
	for i := 0; i < n; i++ {
		b.words[i] &^= o.words[i]
	}
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// AppendIDs appends the set ids in ascending order.
func (b *Bitmap) AppendIDs(dst []model.ObjectID) []model.ObjectID {
	// lint:alloc-ok amortized pre-sizing to the output bound; zero once the caller reuses dst
	dst = slices.Grow(dst, b.Count())
	for i, w := range b.words {
		base := model.ObjectID(i) << 6
		for w != 0 {
			dst = append(dst, base+model.ObjectID(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// KeepSorted compacts ids in place to those present in the bitmap,
// preserving order.
//
// irlint:hot candidate compaction after bitmap marking, runs once per plan element
func (b *Bitmap) KeepSorted(ids []model.ObjectID) []model.ObjectID {
	w := 0
	for _, id := range ids {
		if b.Contains(id) {
			ids[w] = id
			w++
		}
	}
	return ids[:w]
}

// SizeBytes reports the bitmap's resident size.
func (b *Bitmap) SizeBytes() int64 { return int64(cap(b.words)) * 8 }

// BitmapScratch is a pooled pair of reusable bitmaps for the
// intersection hot paths: Cands holds the candidate set, Matched
// accumulates per-division marks. The pool recycles them across
// queries, so steady-state bitmap intersections allocate nothing.
type BitmapScratch struct {
	Cands   Bitmap
	Matched Bitmap
}

var bitmapPool = sync.Pool{New: func() any { return new(BitmapScratch) }}

// GetBitmapScratch borrows a scratch pair from the pool.
func GetBitmapScratch() *BitmapScratch { return bitmapPool.Get().(*BitmapScratch) }

// PutBitmapScratch returns a scratch pair to the pool.
func PutBitmapScratch(s *BitmapScratch) { bitmapPool.Put(s) }

// GallopLowerBound returns the smallest index i in [lo, len(ids)] with
// ids[i] >= target, using exponential probing from lo — O(log d) for a
// match d positions ahead, the skew-friendly search the galloping
// intersections rely on. ids must be ascending.
//
// irlint:hot galloping probe, runs per small-side element per query
func GallopLowerBound(ids []model.ObjectID, target model.ObjectID, lo int) int {
	if lo >= len(ids) || ids[lo] >= target {
		return lo
	}
	// Invariant: ids[lo] < target; double the step until hi overshoots.
	step := 1
	hi := lo + 1
	for hi < len(ids) && ids[hi] < target {
		lo = hi
		hi += step
		step <<= 1
	}
	if hi > len(ids) {
		hi = len(ids)
	}
	// Binary search in (lo, hi]: ids[lo] < target <= ids[hi] (or hi==len).
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if ids[mid] < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// GallopLowerBoundList is GallopLowerBound over a postings list's ids.
//
// irlint:hot galloping probe over postings divisions, runs per candidate per query
func GallopLowerBoundList(l []Posting, target model.ObjectID, lo int) int {
	if lo >= len(l) || l[lo].ID >= target {
		return lo
	}
	step := 1
	hi := lo + 1
	for hi < len(l) && l[hi].ID < target {
		lo = hi
		hi += step
		step <<= 1
	}
	if hi > len(l) {
		hi = len(l)
	}
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if l[mid].ID < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// IntersectGalloping intersects two ascending id slices where small is
// much shorter than large: each small element gallops forward in large
// from the last probe position, so the cost is O(|small| log(|large| /
// |small|)) instead of the merge's O(|small| + |large|).
//
// irlint:hot galloping intersection for skewed list sizes
func IntersectGalloping(small, large, dst []model.ObjectID) []model.ObjectID {
	assertSortedIDs(small, "IntersectGalloping small")
	assertSortedIDs(large, "IntersectGalloping large")
	// lint:alloc-ok amortized pre-sizing to the output bound; zero once the caller reuses dst
	dst = slices.Grow(dst, len(small))
	lo := 0
	for _, id := range small {
		lo = GallopLowerBound(large, id, lo)
		if lo == len(large) {
			break
		}
		if large[lo] == id {
			dst = append(dst, id)
			lo++
		}
	}
	return dst
}

// IntersectAnySorted is the container-aware intersection dispatch for
// two ascending id slices: galloping when the sizes are skewed past
// GallopRatio, the linear merge otherwise. Results are identical to
// IntersectSortedIDs in all cases.
//
// irlint:hot container-aware intersection dispatch on the query hot path
func IntersectAnySorted(a, b, dst []model.ObjectID) []model.ObjectID {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) > len(a)*GallopRatio {
		return IntersectGalloping(a, b, dst)
	}
	return IntersectSortedIDs(a, b, dst)
}

// IntersectAny is the container-aware counterpart of IntersectIDs: when
// the list dwarfs the candidate set (or vice versa) it gallops through
// the larger side instead of merging both. Semantics match IntersectIDs
// exactly — in particular, tombstoned entries still match, relying on
// the all-copies-tombstoned deletion invariant the merge path relies on.
//
// irlint:hot container-aware list intersection dispatch on the query hot path
func (l List) IntersectAny(cands, dst []model.ObjectID) []model.ObjectID {
	switch {
	case len(l) > len(cands)*GallopRatio:
		assertSortedIDs(cands, "List.IntersectAny candidates")
		assertSortedList(l, "List.IntersectAny list")
		// lint:alloc-ok amortized pre-sizing to the output bound; zero once the caller reuses dst
		dst = slices.Grow(dst, len(cands))
		lo := 0
		for _, id := range cands {
			lo = GallopLowerBoundList(l, id, lo)
			if lo == len(l) {
				break
			}
			if l[lo].ID == id {
				dst = append(dst, id)
				lo++
			}
		}
		return dst
	case len(cands) > len(l)*GallopRatio:
		assertSortedIDs(cands, "List.IntersectAny candidates")
		assertSortedList(l, "List.IntersectAny list")
		// lint:alloc-ok amortized pre-sizing to the output bound; zero once the caller reuses dst
		dst = slices.Grow(dst, len(l))
		lo := 0
		for i := range l {
			lo = GallopLowerBound(cands, l[i].ID, lo)
			if lo == len(cands) {
				break
			}
			if cands[lo] == l[i].ID {
				dst = append(dst, cands[lo])
				lo++
			}
		}
		return dst
	default:
		return l.IntersectIDs(cands, dst)
	}
}
