package postings

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

func iv(s, e model.Timestamp) model.Interval { return model.Interval{Start: s, End: e} }

func TestListSortAndFind(t *testing.T) {
	var l List
	l.Append(Posting{ID: 5, Interval: iv(0, 1)})
	l.Append(Posting{ID: 1, Interval: iv(2, 3)})
	l.Append(Posting{ID: 3, Interval: iv(4, 5)})
	if l.IsSorted() {
		t.Error("unsorted list reported sorted")
	}
	l.Sort()
	if !l.IsSorted() {
		t.Error("Sort did not sort")
	}
	if pos, ok := l.FindID(3); !ok || pos != 1 {
		t.Errorf("FindID(3) = %d, %v", pos, ok)
	}
	if _, ok := l.FindID(2); ok {
		t.Error("FindID(2) should miss")
	}
	if pos, _ := l.FindID(9); pos != len(l) {
		t.Error("FindID past end should return len")
	}
}

func TestTemporalFilter(t *testing.T) {
	l := List{
		{ID: 0, Interval: iv(0, 10)},
		{ID: 1, Interval: iv(20, 30)},
		{ID: 2, Interval: iv(5, 25)},
	}
	got := l.TemporalFilter(iv(8, 22), nil)
	want := []model.ObjectID{0, 1, 2}
	if !model.EqualIDs(got, want) {
		t.Errorf("TemporalFilter = %v, want %v", got, want)
	}
	got = l.TemporalFilter(iv(11, 19), nil)
	want = []model.ObjectID{2}
	if !model.EqualIDs(got, want) {
		t.Errorf("TemporalFilter = %v, want %v", got, want)
	}
	if got := l.TemporalFilter(iv(100, 200), nil); len(got) != 0 {
		t.Errorf("TemporalFilter = %v, want empty", got)
	}
}

func TestIntersectIDs(t *testing.T) {
	l := List{{ID: 1}, {ID: 3}, {ID: 5}, {ID: 7}}
	tests := []struct {
		cands, want []model.ObjectID
	}{
		{nil, nil},
		{[]model.ObjectID{2, 4, 6}, nil},
		{[]model.ObjectID{1, 7}, []model.ObjectID{1, 7}},
		{[]model.ObjectID{0, 3, 5, 9}, []model.ObjectID{3, 5}},
		{[]model.ObjectID{1, 3, 5, 7}, []model.ObjectID{1, 3, 5, 7}},
	}
	for _, tt := range tests {
		got := l.IntersectIDs(tt.cands, nil)
		if !model.EqualIDs(got, tt.want) {
			t.Errorf("IntersectIDs(%v) = %v, want %v", tt.cands, got, tt.want)
		}
	}
}

func TestIntersectSortedIDs(t *testing.T) {
	a := []model.ObjectID{1, 2, 4, 8}
	b := []model.ObjectID{2, 3, 4, 9}
	got := IntersectSortedIDs(a, b, nil)
	want := []model.ObjectID{2, 4}
	if !model.EqualIDs(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	if got := IntersectSortedIDs(a, nil, nil); len(got) != 0 {
		t.Error("intersection with empty should be empty")
	}
}

func TestIntersectAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		a := randomSortedIDs(rng, 40, 60)
		b := randomSortedIDs(rng, 40, 60)
		got := IntersectSortedIDs(a, b, nil)
		inB := map[model.ObjectID]bool{}
		for _, id := range b {
			inB[id] = true
		}
		var want []model.ObjectID
		for _, id := range a {
			if inB[id] {
				want = append(want, id)
			}
		}
		if !model.EqualIDs(got, want) {
			t.Fatalf("trial %d: got %v, want %v", trial, got, want)
		}
	}
}

func randomSortedIDs(rng *rand.Rand, n, space int) []model.ObjectID {
	ids := make([]model.ObjectID, rng.Intn(n))
	for i := range ids {
		ids[i] = model.ObjectID(rng.Intn(space))
	}
	model.SortIDs(ids)
	return model.DedupIDs(ids)
}

func TestContainsSorted(t *testing.T) {
	ids := []model.ObjectID{2, 4, 6}
	for _, id := range ids {
		if !ContainsSorted(ids, id) {
			t.Errorf("ContainsSorted missed %d", id)
		}
	}
	for _, id := range []model.ObjectID{0, 3, 7} {
		if ContainsSorted(ids, id) {
			t.Errorf("ContainsSorted false positive for %d", id)
		}
	}
	if ContainsSorted(nil, 1) {
		t.Error("empty slice should contain nothing")
	}
}

func TestMergeSortedIDLists(t *testing.T) {
	got := MergeSortedIDLists([][]model.ObjectID{
		{1, 5, 9},
		{2, 5},
		nil,
		{1, 9, 10},
	})
	want := []model.ObjectID{1, 2, 5, 9, 10}
	if !model.EqualIDs(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestRefValue(t *testing.T) {
	if RefValue(5, 3) != 5 {
		t.Error("RefValue(5,3) should be 5")
	}
	if RefValue(3, 5) != 5 {
		t.Error("RefValue(3,5) should be 5")
	}
	if RefValue(4, 4) != 4 {
		t.Error("RefValue(4,4) should be 4")
	}
}

// The reference point must lie inside both the object interval and the
// query interval whenever they overlap — that is what makes the slice that
// contains it unique and guaranteed to hold a replica of the object.
func TestRefValueInsideBothIntervals(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 1000; trial++ {
		o := model.Canon(model.Timestamp(rng.Intn(100)), model.Timestamp(rng.Intn(100)))
		q := model.Canon(model.Timestamp(rng.Intn(100)), model.Timestamp(rng.Intn(100)))
		if !o.Overlaps(q) {
			continue
		}
		ref := RefValue(o.Start, q.Start)
		if !o.Contains(ref) || !q.Contains(ref) {
			t.Fatalf("ref %d outside o=%v q=%v", ref, o, q)
		}
	}
}
