package postings

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

func benchLists(n int) (List, []model.ObjectID) {
	rng := rand.New(rand.NewSource(3))
	l := make(List, n)
	id := uint32(0)
	for i := range l {
		id += 1 + uint32(rng.Intn(4))
		s := model.Timestamp(rng.Intn(1 << 20))
		l[i] = Posting{ID: model.ObjectID(id), Interval: model.Interval{Start: s, End: s + 1000}}
	}
	cands := make([]model.ObjectID, 0, n/3)
	for i := 0; i < n; i += 3 {
		cands = append(cands, l[i].ID)
	}
	return l, cands
}

func BenchmarkIntersectIDs(b *testing.B) {
	l, cands := benchLists(10_000)
	var dst []model.ObjectID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = l.IntersectIDs(cands, dst[:0])
	}
}

func BenchmarkTemporalFilter(b *testing.B) {
	l, _ := benchLists(10_000)
	q := model.Interval{Start: 1 << 18, End: 1<<18 + 1<<16}
	var dst []model.ObjectID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = l.TemporalFilter(q, dst[:0])
	}
}

func BenchmarkContainsSorted(b *testing.B) {
	_, cands := benchLists(10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ContainsSorted(cands, cands[i%len(cands)])
	}
}
