//go:build !invariants

package postings

import "repro/internal/model"

// InvariantsEnabled reports whether the runtime assertion layer is
// compiled in (the `invariants` build tag, exercised by CI).
const InvariantsEnabled = false

// assertSortedList is a no-op in normal builds; see invariants_on.go.
func assertSortedList(List, string) {}

// assertSortedIDs is a no-op in normal builds; see invariants_on.go.
func assertSortedIDs([]model.ObjectID, string) {}

// assertUniqueSortedIDs is a no-op in normal builds; see invariants_on.go.
func assertUniqueSortedIDs([]model.ObjectID, string) {}
