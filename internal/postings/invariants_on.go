//go:build invariants

package postings

import (
	"fmt"

	"repro/internal/model"
)

// InvariantsEnabled reports whether the runtime assertion layer is
// compiled in (the `invariants` build tag, exercised by CI).
const InvariantsEnabled = true

// assertSortedList panics when the postings list is out of ascending id
// order — the precondition every merge intersection of Algorithm 1 rests
// on. Compiled out of normal builds.
func assertSortedList(l List, context string) {
	if !l.IsSorted() {
		// lint:panic-ok invariants build: broken sortedness must abort loudly
		panic(fmt.Sprintf("postings: invariant violated: unsorted list in %s", context))
	}
}

// assertSortedIDs panics when the id slice is not ascending. Compiled out
// of normal builds.
func assertSortedIDs(ids []model.ObjectID, context string) {
	for i := 1; i < len(ids); i++ {
		if ids[i-1] > ids[i] {
			// lint:panic-ok invariants build: broken id ordering must abort loudly
			panic(fmt.Sprintf("postings: invariant violated: ids not ascending at %d in %s", i, context))
		}
	}
}

// assertUniqueSortedIDs panics when the id slice is not strictly ascending
// (sorted and de-duplicated) — the contract of the reference-value de-dup
// outputs. Compiled out of normal builds.
func assertUniqueSortedIDs(ids []model.ObjectID, context string) {
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			// lint:panic-ok invariants build: duplicate or unordered result ids must abort loudly
			panic(fmt.Sprintf("postings: invariant violated: ids not strictly ascending at %d in %s", i, context))
		}
	}
}
