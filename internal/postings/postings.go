// Package postings provides the shared postings-list machinery of the
// IR-first indices: time-aware postings entries, id-sorted list operations
// (merge and binary-search intersections), and the reference-value
// de-duplication technique of Dittrich & Seeger that the paper uses for all
// sliced structures.
package postings

import (
	"math"
	"slices"
	"sort"

	"repro/internal/model"
)

// Tombstone is the sentinel interval that marks a logically deleted entry
// (Section 5.5: deletions are logical, entries are located and flagged).
// The sentinel overlaps no real interval, so every comparison-based path
// skips it for free; bulk "no comparison" paths must test IsTombstone.
// lint:interval-ok the deletion sentinel must violate Start <= End so it overlaps no real interval
var Tombstone = model.Interval{Start: math.MaxInt64, End: math.MinInt64}

// IsTombstone reports whether an interval is the deletion sentinel.
func IsTombstone(iv model.Interval) bool {
	return iv.Start == math.MaxInt64 && iv.End == math.MinInt64
}

// DeadBit flags a logically deleted entry in structures sorted by time,
// where rewriting the interval (as the Tombstone sentinel does) would break
// the sort order. Object ids must stay below 2^31.
const DeadBit model.ObjectID = 1 << 31

// MarkDead sets the dead bit on an id.
func MarkDead(id model.ObjectID) model.ObjectID { return id | DeadBit }

// IsDead reports whether the dead bit is set.
func IsDead(id model.ObjectID) bool { return id&DeadBit != 0 }

// LiveID strips the dead bit.
func LiveID(id model.ObjectID) model.ObjectID { return id &^ DeadBit }

// Posting is one entry of a time-aware postings list: the object id plus
// its lifespan (the <o.id, [o.t_st, o.t_end]> pair of Section 2.2).
type Posting struct {
	ID       model.ObjectID
	Interval model.Interval
}

// List is a postings list ordered by ascending object id, the standard IR
// layout enabling merge intersections.
type List []Posting

// Append adds an entry; callers append ids in increasing order (dense ids
// assigned in arrival order keep this free, as the paper notes for
// updates). Use Sort after out-of-order construction.
func (l *List) Append(p Posting) { *l = append(*l, p) }

// Clone returns an independent copy of the list. Lists handed out by
// index accessors alias shared storage and are read-only (the
// alias-mutation analyzer enforces this outside the owning packages);
// Clone is the sanctioned way to obtain a mutable copy.
func (l List) Clone() List {
	if l == nil {
		return nil
	}
	out := make(List, len(l))
	copy(out, l)
	return out
}

// Sort re-establishes the id order after bulk loading.
func (l List) Sort() {
	sort.Slice(l, func(i, j int) bool { return l[i].ID < l[j].ID })
	assertSortedList(l, "List.Sort")
}

// IsSorted reports whether the list is in ascending id order.
func (l List) IsSorted() bool {
	return sort.SliceIsSorted(l, func(i, j int) bool { return l[i].ID < l[j].ID })
}

// FindID returns the position of id in the list and whether it is present.
func (l List) FindID(id model.ObjectID) (int, bool) {
	i := sort.Search(len(l), func(i int) bool { return l[i].ID >= id })
	return i, i < len(l) && l[i].ID == id
}

// TemporalFilter appends to dst the ids of entries whose interval overlaps
// q, preserving id order, and returns dst. This is the Lines 4-6 filter of
// Algorithm 1.
//
// irlint:hot Algorithm 1 temporal filter, runs once per postings list per query
func (l List) TemporalFilter(q model.Interval, dst []model.ObjectID) []model.ObjectID {
	for i := range l {
		if l[i].Interval.Overlaps(q) {
			dst = append(dst, l[i].ID)
		}
	}
	return dst
}

// IntersectIDs merges a sorted candidate id slice with the list, returning
// the ids present in both (ascending). This is the merge-sort intersection
// of Algorithm 1 Line 8. dst is pre-grown to the output bound
// min(|cands|, |l|) so the merge loop never reallocates, even from a nil
// dst; callers reusing a buffer across queries amortize the growth to zero.
//
// irlint:hot Algorithm 1 merge intersection, the dominant per-query kernel
func (l List) IntersectIDs(cands []model.ObjectID, dst []model.ObjectID) []model.ObjectID {
	assertSortedIDs(cands, "List.IntersectIDs candidates")
	assertSortedList(l, "List.IntersectIDs list")
	// lint:alloc-ok amortized pre-sizing to the output bound; zero once the caller reuses dst
	dst = slices.Grow(dst, min(len(cands), len(l)))
	i, j := 0, 0
	for i < len(cands) && j < len(l) {
		switch {
		case cands[i] < l[j].ID:
			i++
		case cands[i] > l[j].ID:
			j++
		default:
			dst = append(dst, cands[i])
			i++
			j++
		}
	}
	return dst
}

// IntersectSortedIDs merge-intersects two ascending id slices. dst is
// pre-grown to the output bound min(|a|, |b|) so the merge loop never
// reallocates.
//
// irlint:hot merge intersection over candidate id sets, runs per query plan step
func IntersectSortedIDs(a, b, dst []model.ObjectID) []model.ObjectID {
	assertSortedIDs(a, "IntersectSortedIDs a")
	assertSortedIDs(b, "IntersectSortedIDs b")
	// lint:alloc-ok amortized pre-sizing to the output bound; zero once the caller reuses dst
	dst = slices.Grow(dst, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// ContainsSorted reports whether id occurs in the ascending slice ids,
// using binary search. Shared by the binary-search intersection variants.
//
// irlint:hot binary-search probe, runs per candidate per query
func ContainsSorted(ids []model.ObjectID, id model.ObjectID) bool {
	assertSortedIDs(ids, "ContainsSorted")
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	return i < len(ids) && ids[i] == id
}

// MergeSortedIDLists k-way merges already-sorted id slices into one sorted,
// deduplicated slice. Used to combine per-slice candidate outputs.
//
// irlint:hot k-way candidate merge, runs once per sliced-index query
func MergeSortedIDLists(lists [][]model.ObjectID) []model.ObjectID {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	// lint:alloc-ok single exactly-sized output buffer per k-way merge
	out := make([]model.ObjectID, 0, total)
	for _, l := range lists {
		assertSortedIDs(l, "MergeSortedIDLists input")
		out = append(out, l...)
	}
	model.SortIDs(out)
	out = model.DedupIDs(out)
	assertUniqueSortedIDs(out, "MergeSortedIDLists output")
	return out
}

// RefValue returns the reference time point of an object replicated across
// slices: max(o.t_st, q.t_st). Under the reference-value method [25] the
// object is reported only from the slice containing this point, which both
// interval (the object's, clipped to the query) spans, guaranteeing exactly
// one report without hashing.
func RefValue(objStart, queryStart model.Timestamp) model.Timestamp {
	if objStart > queryStart {
		return objStart
	}
	return queryStart
}
