package postings

import (
	"testing"

	"repro/internal/model"
)

// unionSorted is the reference union of two sorted id slices.
func unionSorted(a, b []model.ObjectID) []model.ObjectID {
	out := append(append([]model.ObjectID(nil), a...), b...)
	model.SortIDs(out)
	return model.DedupIDs(out)
}

// diffSorted is the reference a \ b over sorted id slices.
func diffSorted(a, b []model.ObjectID) []model.ObjectID {
	out := make([]model.ObjectID, 0, len(a))
	for _, id := range a {
		if !ContainsSorted(b, id) {
			out = append(out, id)
		}
	}
	return out
}

func TestBitmapSetContains(t *testing.T) {
	var b Bitmap
	b.Reset(200)
	for _, id := range []model.ObjectID{0, 1, 63, 64, 65, 127, 128, 199} {
		if b.Contains(id) {
			t.Fatalf("fresh bitmap contains %d", id)
		}
		b.Set(id)
		if !b.Contains(id) {
			t.Fatalf("bitmap lost %d after Set", id)
		}
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	// Out-of-universe ids are ignored by Set and absent for Contains.
	b.Set(1000)
	if b.Contains(1000) {
		t.Fatal("out-of-universe Set took effect")
	}
	// Reset clears and resizes.
	b.Reset(64)
	if got := b.Count(); got != 0 {
		t.Fatalf("Count after Reset = %d, want 0", got)
	}
	if b.Contains(63) {
		t.Fatal("Reset left bit 63 set")
	}
}

func TestBitmapSetSortedRoundTrip(t *testing.T) {
	cases := [][]model.ObjectID{
		nil,
		{0},
		{63, 64, 65},
		{5, 6, 7, 1000, 4096, 4097},
	}
	var b Bitmap
	for _, ids := range cases {
		b.SetSorted(ids)
		got := b.AppendIDs(nil)
		if !model.EqualIDs(got, ids) {
			t.Errorf("round trip %v -> %v", ids, got)
		}
		if b.Count() != len(ids) {
			t.Errorf("Count(%v) = %d", ids, b.Count())
		}
	}
}

func TestBitmapKernelsMatchSliceOracle(t *testing.T) {
	a := []model.ObjectID{0, 2, 63, 64, 100, 129, 500}
	c := []model.ObjectID{2, 64, 65, 100, 501, 600, 900}

	var ba, bc Bitmap
	ba.SetSorted(a)
	bc.SetSorted(c)
	ba.And(&bc)
	if got, want := ba.AppendIDs(nil), IntersectSortedIDs(a, c, nil); !model.EqualIDs(got, want) {
		t.Errorf("And = %v, want %v", got, want)
	}

	// Or marks into a bitmap sized for the larger universe.
	ba.SetSorted(c)
	bc.SetSorted(a)
	ba.Or(&bc)
	if got, want := ba.AppendIDs(nil), unionSorted(a, c); !model.EqualIDs(got, want) {
		t.Errorf("Or = %v, want %v", got, want)
	}

	ba.SetSorted(a)
	bc.SetSorted(c)
	ba.AndNot(&bc)
	if got, want := ba.AppendIDs(nil), diffSorted(a, c); !model.EqualIDs(got, want) {
		t.Errorf("AndNot = %v, want %v", got, want)
	}

	// And against a smaller universe clears the tail beyond it.
	ba.SetSorted(a)
	bc.SetSorted([]model.ObjectID{2})
	ba.And(&bc)
	if got, want := ba.AppendIDs(nil), []model.ObjectID{2}; !model.EqualIDs(got, want) {
		t.Errorf("And small-universe = %v, want %v", got, want)
	}
}

func TestBitmapKeepSorted(t *testing.T) {
	var b Bitmap
	b.SetSorted([]model.ObjectID{3, 64, 70})
	ids := []model.ObjectID{1, 3, 64, 69, 70, 4096}
	got := b.KeepSorted(ids)
	if want := []model.ObjectID{3, 64, 70}; !model.EqualIDs(got, want) {
		t.Fatalf("KeepSorted = %v, want %v", got, want)
	}
}

func TestGallopLowerBound(t *testing.T) {
	ids := []model.ObjectID{2, 4, 4, 8, 16, 32, 33, 34, 64, 100}
	for lo := 0; lo <= len(ids); lo++ {
		for target := model.ObjectID(0); target <= 101; target++ {
			got := GallopLowerBound(ids, target, lo)
			want := lo
			for want < len(ids) && ids[want] < target {
				want++
			}
			if got != want {
				t.Fatalf("GallopLowerBound(%v, %d, %d) = %d, want %d", ids, target, lo, got, want)
			}
		}
	}
}

func TestIntersectGallopingMatchesMerge(t *testing.T) {
	small := []model.ObjectID{5, 100, 101, 4000}
	large := make([]model.ObjectID, 0, 5000)
	for i := 0; i < 5000; i++ {
		large = append(large, model.ObjectID(i))
	}
	got := IntersectGalloping(small, large, nil)
	want := IntersectSortedIDs(small, large, nil)
	if !model.EqualIDs(got, want) {
		t.Fatalf("galloping %v != merge %v", got, want)
	}
}

// TestIntersectAnySortedForcedPaths lowers GallopRatio so both dispatch
// arms run on small inputs, and verifies each against the merge.
func TestIntersectAnySortedForcedPaths(t *testing.T) {
	old := GallopRatio
	GallopRatio = 1
	defer func() { GallopRatio = old }()

	a := []model.ObjectID{1, 5, 9, 20}
	b := []model.ObjectID{0, 1, 2, 5, 6, 7, 9, 10, 20, 21, 30, 40}
	want := IntersectSortedIDs(a, b, nil)
	if got := IntersectAnySorted(a, b, nil); !model.EqualIDs(got, want) {
		t.Fatalf("IntersectAnySorted(a,b) = %v, want %v", got, want)
	}
	if got := IntersectAnySorted(b, a, nil); !model.EqualIDs(got, want) {
		t.Fatalf("IntersectAnySorted(b,a) = %v, want %v", got, want)
	}
	// In-place reuse: dst = cands[:0], the hot-path aliasing pattern.
	cands := append([]model.ObjectID(nil), a...)
	if got := IntersectAnySorted(cands, b, cands[:0]); !model.EqualIDs(got, want) {
		t.Fatalf("aliased IntersectAnySorted = %v, want %v", got, want)
	}
}

// TestListIntersectAnyMatchesIntersectIDs verifies the dispatching list
// intersection agrees with the plain merge in both skew directions —
// including tombstoned entries, which IntersectIDs deliberately keeps
// (deletion tombstones every copy, so a dead object never enters the
// candidate set in the first place).
func TestListIntersectAnyMatchesIntersectIDs(t *testing.T) {
	old := GallopRatio
	GallopRatio = 1
	defer func() { GallopRatio = old }()

	l := make(List, 0, 40)
	for i := 0; i < 40; i++ {
		p := Posting{ID: model.ObjectID(i * 2), Interval: model.NewInterval(0, 10)}
		if i%7 == 0 {
			p.Interval = Tombstone
		}
		l = append(l, p)
	}
	cands := []model.ObjectID{0, 3, 14, 28, 40, 77, 78}
	want := l.IntersectIDs(cands, nil)
	if got := l.IntersectAny(cands, nil); !model.EqualIDs(got, want) {
		t.Fatalf("list-gallop arm = %v, want %v", got, want)
	}
	// Opposite skew: candidates dwarf the list.
	shortList := l[:2]
	want = shortList.IntersectIDs(cands, nil)
	if got := shortList.IntersectAny(cands, nil); !model.EqualIDs(got, want) {
		t.Fatalf("cands-gallop arm = %v, want %v", got, want)
	}
}

func TestBitmapScratchPool(t *testing.T) {
	s := GetBitmapScratch()
	s.Cands.SetSorted([]model.ObjectID{1, 2, 3})
	s.Matched.SetSorted([]model.ObjectID{2})
	PutBitmapScratch(s)
	s2 := GetBitmapScratch()
	defer PutBitmapScratch(s2)
	// Pooled bitmaps are reused dirty; Reset/SetSorted must fully clear.
	s2.Cands.SetSorted([]model.ObjectID{5})
	if got := s2.Cands.AppendIDs(nil); !model.EqualIDs(got, []model.ObjectID{5}) {
		t.Fatalf("pooled bitmap not cleared: %v", got)
	}
}

// FuzzContainerParity drives the bitmap container against the sorted
// slice oracles on arbitrary id sets: array -> bitmap -> array
// round-trips, and the AND/OR/ANDNOT kernels against merge-based set
// operations.
func FuzzContainerParity(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, []byte{1, 1, 2})
	f.Add([]byte{}, []byte{5, 5, 5})
	f.Add([]byte{255, 255, 255}, []byte{0})
	f.Add([]byte{63, 1, 64}, []byte{63, 2})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		a := idsFromBytes(rawA)
		b := idsFromBytes(rawB)

		var ba, bb Bitmap
		ba.SetSorted(a)
		bb.SetSorted(b)

		// Round trips.
		if got := ba.AppendIDs(nil); !model.EqualIDs(got, a) {
			t.Fatalf("round trip %v -> %v", a, got)
		}
		if got := bb.AppendIDs(nil); !model.EqualIDs(got, b) {
			t.Fatalf("round trip %v -> %v", b, got)
		}
		for _, id := range a {
			if !ba.Contains(id) {
				t.Fatalf("bitmap missing %d", id)
			}
		}

		// AND vs merge intersection.
		ba.And(&bb)
		want := IntersectSortedIDs(a, b, nil)
		if got := ba.AppendIDs(nil); !model.EqualIDs(got, want) {
			t.Fatalf("And = %v, want %v (a=%v b=%v)", got, want, a, b)
		}
		// KeepSorted agrees with the merge too.
		bb.SetSorted(b)
		cands := append([]model.ObjectID(nil), a...)
		if got := bb.KeepSorted(cands); !model.EqualIDs(got, want) {
			t.Fatalf("KeepSorted = %v, want %v (a=%v b=%v)", got, want, a, b)
		}

		// OR vs merge union: mark into the wider universe.
		ba.SetSorted(a)
		bb.SetSorted(b)
		wide, narrow := &ba, &bb
		if len(b) > 0 && (len(a) == 0 || b[len(b)-1] > a[len(a)-1]) {
			wide, narrow = &bb, &ba
		}
		wide.Or(narrow)
		if got := wide.AppendIDs(nil); !model.EqualIDs(got, unionSorted(a, b)) {
			t.Fatalf("Or = %v, want %v (a=%v b=%v)", got, unionSorted(a, b), a, b)
		}

		// ANDNOT vs difference.
		ba.SetSorted(a)
		bb.SetSorted(b)
		ba.AndNot(&bb)
		if got := ba.AppendIDs(nil); !model.EqualIDs(got, diffSorted(a, b)) {
			t.Fatalf("AndNot = %v, want %v (a=%v b=%v)", got, diffSorted(a, b), a, b)
		}
	})
}

// FuzzGallopParity drives the galloping intersections against the merge
// oracle on arbitrary sorted inputs, in both skew directions, plus the
// List-based dispatch arms.
func FuzzGallopParity(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, []byte{1, 1, 2})
	f.Add([]byte{}, []byte{5})
	f.Add([]byte{10}, []byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		a := idsFromBytes(rawA)
		b := idsFromBytes(rawB)
		want := IntersectSortedIDs(a, b, nil)

		if got := IntersectGalloping(a, b, nil); !model.EqualIDs(got, want) {
			t.Fatalf("IntersectGalloping(a,b) = %v, want %v (a=%v b=%v)", got, want, a, b)
		}
		if got := IntersectGalloping(b, a, nil); !model.EqualIDs(got, want) {
			t.Fatalf("IntersectGalloping(b,a) = %v, want %v (a=%v b=%v)", got, want, a, b)
		}
		if got := IntersectAnySorted(a, b, nil); !model.EqualIDs(got, want) {
			t.Fatalf("IntersectAnySorted = %v, want %v (a=%v b=%v)", got, want, a, b)
		}

		// The List dispatch arms: build the list from b, intersect with a.
		l := make(List, len(b))
		for i, id := range b {
			l[i] = Posting{ID: id, Interval: model.NewInterval(0, 1)}
		}
		wantList := l.IntersectIDs(a, nil)
		if got := l.IntersectAny(a, nil); !model.EqualIDs(got, wantList) {
			t.Fatalf("List.IntersectAny = %v, want %v (a=%v b=%v)", got, wantList, a, b)
		}
	})
}
