//go:build invariants

package postings

import (
	"testing"

	"repro/internal/model"
)

// mustPanic asserts fn panics — the invariants layer must abort loudly.
func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected invariant panic, got none", name)
		}
	}()
	fn()
}

func TestInvariantsCompiledIn(t *testing.T) {
	if !InvariantsEnabled {
		t.Fatal("invariants tag set but InvariantsEnabled is false")
	}
}

func TestAssertionsFireOnUnsortedInputs(t *testing.T) {
	unsorted := []model.ObjectID{3, 1, 2}
	sorted := []model.ObjectID{1, 2, 3}
	mustPanic(t, "IntersectSortedIDs", func() {
		IntersectSortedIDs(unsorted, sorted, nil)
	})
	mustPanic(t, "ContainsSorted", func() {
		ContainsSorted(unsorted, 2)
	})
	mustPanic(t, "MergeSortedIDLists", func() {
		MergeSortedIDLists([][]model.ObjectID{unsorted})
	})
	mustPanic(t, "List.IntersectIDs", func() {
		l := List{{ID: 5}, {ID: 2}}
		l.IntersectIDs(sorted, nil)
	})
}

func TestAssertionsPassOnSortedInputs(t *testing.T) {
	a := []model.ObjectID{1, 2, 3}
	b := []model.ObjectID{2, 3, 4}
	got := IntersectSortedIDs(a, b, nil)
	if !model.EqualIDs(got, []model.ObjectID{2, 3}) {
		t.Fatalf("IntersectSortedIDs = %v", got)
	}
	if !ContainsSorted(a, 2) || ContainsSorted(a, 9) {
		t.Fatal("ContainsSorted misbehaves under invariants")
	}
}
