package postings

import (
	"testing"

	"repro/internal/allocbudget"
	"repro/internal/model"
)

// TestAllocBudget pins the steady-state allocation behavior of the
// annotated intersection kernels: with a reused dst buffer both merges
// must be allocation-free once warmed up. `make benchmem` re-records.
func TestAllocBudget(t *testing.T) {
	l, cands := benchLists(10_000)
	other := make([]model.ObjectID, 0, len(l)/2)
	for i := 0; i < len(l); i += 2 {
		other = append(other, l[i].ID)
	}

	allocbudget.Gate(t, "postings/List.IntersectIDs", func(b *testing.B) {
		var dst []model.ObjectID
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = l.IntersectIDs(cands, dst[:0])
		}
	})

	allocbudget.Gate(t, "postings/IntersectSortedIDs", func(b *testing.B) {
		var dst []model.ObjectID
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = IntersectSortedIDs(cands, other, dst[:0])
		}
	})
}
