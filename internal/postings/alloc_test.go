package postings

import (
	"testing"

	"repro/internal/allocbudget"
	"repro/internal/model"
)

// TestAllocBudget pins the steady-state allocation behavior of the
// annotated intersection kernels: with a reused dst buffer both merges
// must be allocation-free once warmed up. `make benchmem` re-records.
func TestAllocBudget(t *testing.T) {
	l, cands := benchLists(10_000)
	other := make([]model.ObjectID, 0, len(l)/2)
	for i := 0; i < len(l); i += 2 {
		other = append(other, l[i].ID)
	}

	allocbudget.Gate(t, "postings/List.IntersectIDs", func(b *testing.B) {
		var dst []model.ObjectID
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = l.IntersectIDs(cands, dst[:0])
		}
	})

	allocbudget.Gate(t, "postings/IntersectSortedIDs", func(b *testing.B) {
		var dst []model.ObjectID
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = IntersectSortedIDs(cands, other, dst[:0])
		}
	})

	// The bitmap container kernels: steady state marks, intersects and
	// compacts entirely inside pooled word slices.
	allocbudget.Gate(t, "postings/Bitmap.And", func(b *testing.B) {
		var ba, bb Bitmap
		ba.SetSorted(cands)
		bb.SetSorted(other)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ba.SetSorted(cands)
			ba.And(&bb)
		}
	})

	allocbudget.Gate(t, "postings/Bitmap.Or", func(b *testing.B) {
		var ba, bb Bitmap
		ba.SetSorted(cands)
		bb.SetSorted(other)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ba.SetSorted(cands)
			ba.Or(&bb)
		}
	})

	allocbudget.Gate(t, "postings/Bitmap.KeepSorted", func(b *testing.B) {
		var bb Bitmap
		bb.SetSorted(other)
		buf := append([]model.ObjectID(nil), cands...)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(buf[:cap(buf)], cands)
			_ = bb.KeepSorted(buf[:len(cands)])
		}
	})

	allocbudget.Gate(t, "postings/IntersectGalloping", func(b *testing.B) {
		small := cands[:min(64, len(cands))]
		var dst []model.ObjectID
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = IntersectGalloping(small, other, dst[:0])
		}
	})
}
