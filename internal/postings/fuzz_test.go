package postings

import (
	"testing"

	"repro/internal/model"
)

// idsFromBytes derives a sorted, de-duplicated id list from raw fuzz
// bytes: each byte is a gap, so any input maps to a valid sorted list.
func idsFromBytes(raw []byte) []model.ObjectID {
	ids := make([]model.ObjectID, 0, len(raw))
	cur := model.ObjectID(0)
	for _, b := range raw {
		cur += model.ObjectID(b) + 1 // strictly increasing
		ids = append(ids, cur)
	}
	return ids
}

// intersectByBinarySearch is the probe-side intersection the tIF+HINT
// binary variant uses (Algorithm 3): for each candidate, binary-search
// the other list.
func intersectByBinarySearch(a, b []model.ObjectID) []model.ObjectID {
	var out []model.ObjectID
	for _, id := range a {
		if ContainsSorted(b, id) {
			out = append(out, id)
		}
	}
	return out
}

// FuzzIntersect verifies the two intersection strategies of the paper —
// merge (Algorithm 1 / 4) and binary search (Algorithm 3) — agree on
// arbitrary sorted inputs, in both argument orders, including the
// List-based merge used by postings-backed indices.
func FuzzIntersect(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, []byte{1, 1, 2})
	f.Add([]byte{}, []byte{5, 5, 5})
	f.Add([]byte{0, 0, 0, 0, 0}, []byte{0, 0, 0})
	f.Add([]byte{10, 20, 30}, []byte{})
	f.Add([]byte{255, 255}, []byte{1, 255, 3})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		a := idsFromBytes(rawA)
		b := idsFromBytes(rawB)

		merge := IntersectSortedIDs(a, b, nil)
		bs := intersectByBinarySearch(a, b)
		if !model.EqualIDs(merge, bs) {
			t.Fatalf("merge %v != binary-search %v for a=%v b=%v", merge, bs, a, b)
		}

		// Symmetry.
		rev := IntersectSortedIDs(b, a, nil)
		if !model.EqualIDs(merge, rev) {
			t.Fatalf("intersection not symmetric: %v vs %v", merge, rev)
		}

		// List-based merge (Algorithm 1 Line 8) must agree too.
		l := make(List, len(b))
		for i, id := range b {
			l[i] = Posting{ID: id, Interval: model.NewInterval(0, 1)}
		}
		viaList := l.IntersectIDs(a, nil)
		if !model.EqualIDs(merge, viaList) {
			t.Fatalf("List.IntersectIDs %v != IntersectSortedIDs %v", viaList, merge)
		}

		// Every reported id is in both inputs; result stays sorted.
		for i, id := range merge {
			if !ContainsSorted(a, id) || !ContainsSorted(b, id) {
				t.Fatalf("result id %d not in both inputs", id)
			}
			if i > 0 && merge[i-1] >= id {
				t.Fatalf("result not strictly ascending: %v", merge)
			}
		}
	})
}
