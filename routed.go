package temporalir

import (
	"fmt"

	"repro/internal/route"
)

// DefaultRoutedMethods is the sub-build set the Routed meta-method
// keeps when Options.RoutedMethods is nil: the flat tIF (wins the
// rare-element regime), the merge and hybrid tIF+HINT variants (win
// large extents / dense candidates), and the performance irHINT (the
// paper's overall winner). Four builds cover the paper's regime
// crossovers without quadrupling memory on methods that never win.
func DefaultRoutedMethods() []Method {
	return []Method{TIF, TIFHintMerge, TIFHintSlicing, IRHintPerf}
}

// classOf maps a Method onto the router's family classes used to seed
// the cost model.
func classOf(m Method) (route.Class, error) {
	switch m {
	case TIF:
		return route.ClassTIF, nil
	case TIFSlicing:
		return route.ClassSlicing, nil
	case TIFSharding:
		return route.ClassSharding, nil
	case TIFHintBinary:
		return route.ClassBinary, nil
	case TIFHintMerge:
		return route.ClassMerge, nil
	case TIFHintSlicing:
		return route.ClassHybrid, nil
	case IRHintPerf:
		return route.ClassPerf, nil
	case IRHintSize:
		return route.ClassSize, nil
	case Routed:
		return 0, fmt.Errorf("temporalir: routed method cannot route to itself")
	default:
		return 0, fmt.Errorf("temporalir: unknown method %q", m)
	}
}

// newRoutedIndex builds every configured sub-index over the collection
// and wires them into the adaptive router.
func newRoutedIndex(c *Collection, opts Options) (Index, error) {
	ms := opts.RoutedMethods
	if len(ms) == 0 {
		ms = DefaultRoutedMethods()
	}
	names := make([]string, len(ms))
	classes := make([]route.Class, len(ms))
	subs := make([]route.Subindex, len(ms))
	seen := make(map[Method]bool, len(ms))
	for i, m := range ms {
		cl, err := classOf(m)
		if err != nil {
			return nil, err
		}
		if seen[m] {
			return nil, fmt.Errorf("temporalir: duplicate routed method %q", m)
		}
		seen[m] = true
		sub, err := NewIndex(m, c, opts)
		if err != nil {
			return nil, err
		}
		names[i], classes[i], subs[i] = string(m), cl, sub
	}
	return route.NewIndex(names, classes, subs, c), nil
}

// NewRouted builds the adaptive routed index (nil methods = the tuned
// default set).
func NewRouted(c *Collection, methods ...Method) (Index, error) {
	return NewIndex(Routed, c, Options{RoutedMethods: methods})
}

// RoutedMethods returns the sub-methods a routed engine dispatches
// across, in decision order, or nil when the engine does not use the
// Routed method.
func (e *Engine) RoutedMethods() []Method {
	if e.router == nil {
		return nil
	}
	names := e.router.Methods()
	ms := make([]Method, len(names))
	for i, n := range names {
		ms[i] = Method(n)
	}
	return ms
}

// RouteDecisions returns the number of queries routed to each
// sub-method, aligned with RoutedMethods, or nil for non-routed
// engines. Counts accumulate across compactions (the router survives
// rebuilds).
func (e *Engine) RouteDecisions() []uint64 {
	if e.router == nil {
		return nil
	}
	n := len(e.router.Methods())
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = e.router.Decisions(i)
	}
	return out
}
