package temporalir_test

import (
	"context"
	"errors"
	"sort"
	"testing"
	"time"

	temporalir "repro"
	"repro/internal/testutil"
)

// shardedWithTimeout builds a 4-shard engine over a sizable corpus with
// the given per-shard deadline.
func shardedWithTimeout(t *testing.T, timeout time.Duration) (*temporalir.Sharded, *temporalir.Engine, *temporalir.Collection) {
	t.Helper()
	cfg := testutil.CollectionConfig{N: 1500, DomainLo: 0, DomainHi: 20000, Dict: 25, MaxDesc: 6, Seed: 999}
	c := testutil.RandomCollection(cfg)
	b := temporalir.NewBuilder()
	for i := range c.Objects {
		o := &c.Objects[i]
		b.Add(o.Interval.Start, o.Interval.End, termsFor(o.Elems)...)
	}
	sh, err := b.BuildSharded(temporalir.TIF, temporalir.Options{}, temporalir.ShardedOptions{
		Shards: 4, ShardTimeout: timeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := engineOver(t, c, temporalir.TIF)
	return sh, oracle, c
}

// TestShardedPartialContract is the core partial-result guarantee: with
// an absurdly tight per-shard deadline, every answer either carries all
// planned shards' contributions (and then matches the oracle exactly)
// or names the shards that were cut — never a silently truncated result
// presented as complete.
func TestShardedPartialContract(t *testing.T) {
	sh, oracle, _ := shardedWithTimeout(t, time.Nanosecond)
	cfg := testutil.CollectionConfig{N: 1500, DomainLo: 0, DomainHi: 20000, Dict: 25, MaxDesc: 6, Seed: 999}
	queries := testutil.RandomQueries(cfg, 120, 1234)

	sawCut := false
	for i, q := range queries {
		terms := termsFor(q.Elems)
		ids, rep, err := sh.SearchShardsCtx(context.Background(), q.Interval.Start, q.Interval.End, terms...)
		if err != nil {
			t.Fatalf("query %d: unexpected hard error %v", i, err)
		}
		if rep.Complete() {
			want := oracle.Search(q.Interval.Start, q.Interval.End, terms...)
			if testutil.ResultChecksum(ids) != testutil.ResultChecksum(want) {
				t.Fatalf("query %d reported complete but diverged from oracle: %v vs %v", i, ids, want)
			}
			continue
		}
		sawCut = true
		if !sort.IntsAreSorted(rep.Cut) {
			t.Fatalf("query %d: cut list not ascending: %v", i, rep.Cut)
		}
		if len(rep.Cut) > rep.Planned {
			t.Fatalf("query %d: cut %d shards but planned only %d", i, len(rep.Cut), rep.Planned)
		}
		for _, si := range rep.Cut {
			if si < 0 || si >= sh.NumShards() {
				t.Fatalf("query %d: cut names bogus shard %d", i, si)
			}
		}
		// The Engine-shaped Ctx variant must refuse to pass a partial
		// result off as success.
		_, err = sh.SearchCtx(context.Background(), q.Interval.Start, q.Interval.End, terms...)
		if err == nil {
			// The second run may have completed — deadlines are racy by
			// nature. Only a nil error WITH a partial report is a bug,
			// and that is unobservable here; the scatter invariant above
			// already covers it.
			continue
		}
		pe, ok := temporalir.AsPartialError(err)
		if !ok {
			t.Fatalf("query %d: SearchCtx error is not a PartialError: %v", i, err)
		}
		if pe.Report.Complete() {
			t.Fatalf("query %d: PartialError carries a complete report", i)
		}
	}
	if !sawCut {
		t.Fatal("1ns per-shard deadline never cut a shard across 120 queries")
	}
	if cs := sh.CoordinatorStats(); cs.ShardsCut == 0 {
		t.Fatal("coordinator never counted a cut shard")
	}

	// The context-free surface never applies the per-shard deadline:
	// plain Search must always be complete and oracle-identical.
	q := queries[0]
	terms := termsFor(q.Elems)
	got := sh.Search(q.Interval.Start, q.Interval.End, terms...)
	want := oracle.Search(q.Interval.Start, q.Interval.End, terms...)
	if testutil.ResultChecksum(got) != testutil.ResultChecksum(want) {
		t.Fatalf("context-free Search diverged under ShardTimeout: %v vs %v", got, want)
	}
}

// TestShardedPartialTopKAndTimeline exercises the same contract on the
// ranked and timeline surfaces.
func TestShardedPartialTopKAndTimeline(t *testing.T) {
	sh, oracle, _ := shardedWithTimeout(t, time.Nanosecond)
	oracle.RefreshScorer()
	sh.RefreshScorer()
	cfg := testutil.CollectionConfig{N: 1500, DomainLo: 0, DomainHi: 20000, Dict: 25, MaxDesc: 6, Seed: 999}
	queries := testutil.RandomQueries(cfg, 60, 777)

	for i, q := range queries {
		terms := termsFor(q.Elems)
		rs, rep, err := sh.SearchTopKShardsCtx(context.Background(), q.Interval.Start, q.Interval.End, 10, terms...)
		if err != nil {
			t.Fatalf("topk query %d: %v", i, err)
		}
		if rep.Complete() {
			want := oracle.SearchTopK(q.Interval.Start, q.Interval.End, 10, terms...)
			if len(rs) != len(want) {
				t.Fatalf("topk query %d complete but diverged: %v vs %v", i, rs, want)
			}
		}
		if _, err := sh.SearchTopKCtx(context.Background(), q.Interval.Start, q.Interval.End, 10, terms...); err != nil {
			if _, ok := temporalir.AsPartialError(err); !ok {
				t.Fatalf("topk query %d: not a PartialError: %v", i, err)
			}
		}
		tl, rep, err := sh.TimelineShardsCtx(context.Background(), q.Interval.Start, q.Interval.End, 6, terms...)
		if err != nil {
			t.Fatalf("timeline query %d: %v", i, err)
		}
		if rep.Complete() && tl != nil {
			want := oracle.Timeline(q.Interval.Start, q.Interval.End, 6, terms...)
			if len(tl) != len(want) {
				t.Fatalf("timeline query %d complete but diverged: %v vs %v", i, tl, want)
			}
		}
	}
}

// TestShardedCtxCancellation: a fired context is a hard error (the
// caller asked to stop), distinct from a per-shard deadline cut.
func TestShardedCtxCancellation(t *testing.T) {
	sh, _, _ := shardedWithTimeout(t, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := sh.SearchShardsCtx(ctx, 0, 20000, "t001")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled scatter returned %v, want context.Canceled", err)
	}
	if _, err := sh.SearchCtx(ctx, 0, 20000, "t001"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled SearchCtx returned %v, want context.Canceled", err)
	}
	if _, ok := temporalir.AsPartialError(err); ok {
		t.Fatal("context cancellation must not be classified as a partial result")
	}
}

// TestShardedBatchNoSilentTruncation cancels a batch mid-flight and
// asserts the satellite-3 contract: every row either carries its full
// result, a PartialError naming the cut shards, or the context error —
// no row is ever a silently truncated success.
func TestShardedBatchNoSilentTruncation(t *testing.T) {
	sh, oracle, _ := shardedWithTimeout(t, 0)
	rows := make([][]string, 64)
	for i := range rows {
		rows[i] = []string{termsFor([]temporalir.ElemID{temporalir.ElemID(i % 25)})[0]}
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan []temporalir.Result, 1)
	go func() { done <- sh.SearchTermsBatchCtx(ctx, 0, 20000, rows) }()
	time.Sleep(200 * time.Microsecond)
	cancel()
	results := <-done
	if len(results) != len(rows) {
		t.Fatalf("batch returned %d rows, want %d", len(results), len(rows))
	}
	completed, errored := 0, 0
	for i, r := range results {
		if r.Err != nil {
			errored++
			if pe, ok := temporalir.AsPartialError(r.Err); ok && pe.Report.Complete() {
				t.Fatalf("row %d: PartialError with a complete report", i)
			}
			continue
		}
		completed++
		want := oracle.Search(0, 20000, rows[i]...)
		if testutil.ResultChecksum(r.IDs) != testutil.ResultChecksum(want) {
			t.Fatalf("row %d returned success with truncated results: %v vs %v", i, r.IDs, want)
		}
	}
	t.Logf("batch after cancel: %d complete, %d errored", completed, errored)

	// Per-shard deadlines inside a batch surface as row-level
	// PartialErrors, never bare short rows.
	sh2, oracle2, _ := shardedWithTimeout(t, time.Nanosecond)
	results2 := sh2.SearchTermsBatchCtx(context.Background(), 0, 20000, rows)
	sawPartial := false
	for i, r := range results2 {
		if r.Err != nil {
			if pe, ok := temporalir.AsPartialError(r.Err); ok {
				sawPartial = true
				if pe.Report.Complete() {
					t.Fatalf("row %d: PartialError with complete report", i)
				}
			}
			continue
		}
		want := oracle2.Search(0, 20000, rows[i]...)
		if testutil.ResultChecksum(r.IDs) != testutil.ResultChecksum(want) {
			t.Fatalf("row %d: silent truncation under ShardTimeout: %v vs %v", i, r.IDs, want)
		}
	}
	if !sawPartial {
		t.Fatal("1ns per-shard deadline never produced a row-level PartialError across 64 rows")
	}
}
