package temporalir

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dict"
	"repro/internal/exec"
	"repro/internal/maint"
	"repro/internal/model"
	"repro/internal/rank"
	"repro/internal/route"
	"repro/internal/shard"
)

// Sharded splits one corpus across N generational stores behind a
// scatter-gather coordinator: inserts route through a shard map
// (time-range partitioning by default, content hash for unbounded
// streams), every shard keeps its own memtable/tombstones/compaction so
// writes and compactions parallelize, and queries fan out over the
// planned shard set via the exec pool, merging per-shard results into
// exactly the answer one engine over the same corpus would give.
//
// Identity is global: all shards draw external ids from one shared
// allocator, so ids equal the single-engine insertion order and merged
// ascending-id results need no translation. The dictionary is shared
// too (one term space, one IDF statistic), guarded by dmu exactly as in
// Engine.
//
// Partial results are explicit: the *ShardsCtx query variants apply the
// configured per-shard deadline and report which shards were cut; the
// plain Engine-shaped variants either return everything or an error
// (PartialError when shards were cut) — never a silently truncated
// result.
type Sharded struct {
	// method and opts are immutable after construction.
	method Method
	opts   Options
	// sopts is the effective sharding configuration: partition kind and
	// bounds after fallback resolution, so a factory can spawn sibling
	// engines partitioned identically.
	sopts ShardedOptions

	// smap is the immutable object→shard assignment.
	smap shard.Map

	// dmu guards the shared dictionary, as in Engine.
	dmu sync.RWMutex
	// irlint:guarded-by dmu
	dict *dict.Dictionary

	// alloc is the shared external-id sequence; every shard store draws
	// from it so ids are globally unique and insertion-ordered.
	alloc *maint.IDAllocator

	// stores are the per-shard generational stores; each has its own
	// internal synchronization. The slice is immutable.
	stores []*maint.Store

	// routers holds each shard's adaptive router when method == Routed
	// (nil entries otherwise). Immutable after construction.
	routers []*route.Router

	// emu guards the per-shard observed time extents used for query
	// pruning. Extents only ever grow (inserts extend them before the
	// object becomes visible), so pruning is conservative: a pruned
	// shard cannot hold a match.
	emu sync.Mutex
	// irlint:guarded-by emu
	extents []extent

	// pool executes the scatter fan-out (and per-shard intra-query
	// fan-out); nil selects the shared defaultPool.
	pool atomicPool

	// Coordinator counters, surfaced in ShardStats/metrics.
	queries      atomic.Uint64
	shardsCut    atomic.Uint64
	shardsPruned atomic.Uint64
}

// extent is one shard's observed [min, max] time envelope.
type extent struct {
	set      bool
	min, max Timestamp
}

// PartitionKind selects the sharding strategy; see shard.Kind.
type PartitionKind = shard.Kind

// Partitioning strategies for ShardedOptions.Partition.
const (
	// PartitionTimeRange cuts a bounded time domain into contiguous
	// per-shard slots (the default).
	PartitionTimeRange = shard.TimeRange
	// PartitionHash routes by content hash — the fallback for unbounded
	// streams.
	PartitionHash = shard.Hash
)

// DefaultShards is the shard count when ShardedOptions.Shards is zero.
const DefaultShards = 4

// ShardedOptions configures a sharded engine.
type ShardedOptions struct {
	// Shards is the shard count (0 selects DefaultShards).
	Shards int
	// Partition selects the strategy. PartitionTimeRange without Bounds
	// derives them from the data (BuildSharded) or falls back to
	// PartitionHash when there is no data to derive from.
	Partition PartitionKind
	// Bounds is the time-range domain for PartitionTimeRange. The zero
	// interval means "unbounded" and triggers derivation or fallback.
	Bounds Interval
	// ShardTimeout is the per-shard deadline the *ShardsCtx query
	// variants apply: a shard that has not answered within it is
	// reported as cut rather than awaited. Zero disables per-shard
	// deadlines (the query's own context still bounds the whole fan-
	// out). The plain (context-free) query methods never apply it —
	// without a report channel a deadline could only truncate silently.
	ShardTimeout time.Duration
}

// ShardReport describes how the coordinator executed one query; see
// shard.Report.
type ShardReport = shard.Report

// PartialError is returned by the Engine-shaped context variants
// (SearchCtx, SearchTopKCtx, TimelineCtx) when per-shard deadlines cut
// one or more shards: the merged result would be missing those shards'
// contribution, and this surface has no report channel, so the
// incompleteness is returned as an error instead of silence. Callers
// that want the partial rows use the *ShardsCtx variants.
type PartialError struct {
	Report ShardReport
}

// Error names the cut shards so logs show exactly what is missing.
func (e *PartialError) Error() string {
	return fmt.Sprintf("temporalir: partial result: %d of %d planned shards cut %v",
		len(e.Report.Cut), e.Report.Planned, e.Report.Cut)
}

// AsPartialError unwraps err as a *PartialError if it is one.
func AsPartialError(err error) (*PartialError, bool) {
	var pe *PartialError
	if errors.As(err, &pe) {
		return pe, true
	}
	return nil, false
}

// normalize resolves defaults and the time-range fallback. span is the
// data-derived domain ((0,0,false) when there is no data).
func (so ShardedOptions) normalize(spanLo, spanHi Timestamp, haveSpan bool) ShardedOptions {
	if so.Shards <= 0 {
		so.Shards = DefaultShards
	}
	if so.Partition == PartitionTimeRange && so.Bounds == (Interval{}) {
		if haveSpan {
			so.Bounds = NewInterval(spanLo, spanHi)
		} else {
			// Unbounded stream with nothing to derive from: hash.
			so.Partition = PartitionHash
		}
	}
	return so
}

// newMap builds the shard map for normalized options.
func (so ShardedOptions) newMap() (shard.Map, error) {
	if so.Partition == PartitionTimeRange {
		return shard.NewTimeRange(so.Shards, so.Bounds.Start, so.Bounds.End)
	}
	return shard.NewHash(so.Shards)
}

// NewSharded returns an empty sharded engine. With PartitionTimeRange
// and zero Bounds there is no data to derive a domain from, so the map
// falls back to content-hash partitioning.
func NewSharded(m Method, opts Options, so ShardedOptions) (*Sharded, error) {
	return buildSharded(dict.New(), &Collection{}, m, opts, so, nil, 0)
}

// BuildSharded constructs a sharded engine over the builder's objects,
// partitioning them through the shard map. Global ids are the builder's
// dense ids (insertion order), exactly what a single Build would have
// assigned. Like Build, the engine detaches from the builder.
func (b *Builder) BuildSharded(m Method, opts Options, so ShardedOptions) (*Sharded, error) {
	coll := &Collection{
		Objects:  append([]Object(nil), b.coll.Objects...),
		DictSize: b.coll.DictSize,
	}
	return buildSharded(b.dict.Clone(), coll, m, opts, so, nil, 0)
}

// buildSharded is the common construction path: partition coll through
// the map and wire per-shard stores around one shared allocator and
// dictionary. ext, when non-nil, supplies each object's stable external
// id (parallel to coll.Objects, the load path); nil selects the dense
// identity mapping. next is the allocator start when ext is non-nil.
func buildSharded(d *dict.Dictionary, coll *Collection, m Method, opts Options, so ShardedOptions, ext []ObjectID, next ObjectID) (*Sharded, error) {
	spanLo, spanHi := Timestamp(0), Timestamp(0)
	haveSpan := false
	if iv, ok := coll.Span(); ok {
		spanLo, spanHi, haveSpan = iv.Start, iv.End, true
	}
	so = so.normalize(spanLo, spanHi, haveSpan)
	smap, err := so.newMap()
	if err != nil {
		return nil, err
	}
	n := so.Shards

	if ext == nil {
		ext = make([]ObjectID, len(coll.Objects))
		for i := range ext {
			ext[i] = ObjectID(i)
		}
		next = ObjectID(len(coll.Objects))
	}
	alloc := maint.NewIDAllocator(next)

	// Partition: per-shard sub-collections with dense internal ids, the
	// global external id table split along the same assignment. ext is
	// ascending (insertion order), so each shard's subsequence is too.
	colls := make([]*Collection, n)
	exts := make([][]ObjectID, n)
	extents := make([]extent, n)
	for i := range colls {
		colls[i] = &Collection{DictSize: coll.DictSize}
	}
	for i := range coll.Objects {
		o := coll.Objects[i]
		si := smap.Route(o.Interval, o.Elems)
		o.ID = ObjectID(len(colls[si].Objects))
		colls[si].Objects = append(colls[si].Objects, o)
		exts[si] = append(exts[si], ext[i])
		ex := &extents[si]
		if !ex.set || o.Interval.Start < ex.min {
			ex.min = o.Interval.Start
		}
		if !ex.set || o.Interval.End > ex.max {
			ex.max = o.Interval.End
		}
		ex.set = true
	}

	s := &Sharded{
		method:  m,
		opts:    opts,
		sopts:   so,
		smap:    smap,
		dict:    d,
		alloc:   alloc,
		stores:  make([]*maint.Store, n),
		routers: make([]*route.Router, n),
		extents: extents,
	}
	for i := 0; i < n; i++ {
		store, router, err := newShardStore(m, opts, colls[i], exts[i], alloc)
		if err != nil {
			return nil, err
		}
		s.stores[i] = store
		s.routers[i] = router
	}
	return s, nil
}

// newShardStore builds one shard's index and generational store. The
// build closure mirrors newEngineWithIdentity's: it re-adopts the
// shard's router across compaction rebuilds.
func newShardStore(m Method, opts Options, coll *Collection, ext []ObjectID, alloc *maint.IDAllocator) (*maint.Store, *route.Router, error) {
	ix, err := NewIndex(m, coll, opts)
	if err != nil {
		return nil, nil, err
	}
	var router *route.Router
	if ri, ok := ix.(*route.Index); ok {
		router = ri.Router()
	}
	build := func(ctx context.Context, c *model.Collection) (maint.Index, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		nix, err := NewIndex(m, c, opts)
		if err != nil {
			return nil, err
		}
		if ri, ok := nix.(*route.Index); ok {
			ri.AdoptRouter(router)
		}
		return nix, nil
	}
	return maint.NewStoreShared(coll, ix, build, ext, alloc), router, nil
}

// Method returns the per-shard index implementation in use.
func (s *Sharded) Method() Method { return s.method }

// IndexOptions returns the index construction options.
func (s *Sharded) IndexOptions() Options { return s.opts }

// ShardOptions returns the effective sharding configuration: shard
// count, resolved partition kind and bounds — what a factory needs to
// spawn sibling sharded engines partitioned identically.
func (s *Sharded) ShardOptions() ShardedOptions { return s.sopts }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.stores) }

// snapshotOne returns shard i's current immutable read generation.
func (s *Sharded) snapshotOne(i int) *maint.Generation { return s.stores[i].Snapshot() }

// Epoch sums the shard epochs. Each shard's epoch is monotonic, so the
// sum advances on every published mutation anywhere in the engine —
// the dirtiness signal the tenant registry's spill path needs.
func (s *Sharded) Epoch() uint64 {
	var sum uint64
	for i := range s.stores {
		sum += s.snapshotOne(i).Epoch()
	}
	return sum
}

// Len returns the number of live objects across all shards.
func (s *Sharded) Len() int {
	n := 0
	for i := range s.stores {
		n += s.snapshotOne(i).Len()
	}
	return n
}

// SizeBytes sums the shards' resident size estimates.
func (s *Sharded) SizeBytes() int64 {
	var n int64
	for i := range s.stores {
		n += s.snapshotOne(i).SizeBytes()
	}
	return n
}

// Insert adds one object: terms intern into the shared dictionary, the
// map routes the object to its shard, and the shard's memtable accepts
// it under a globally allocated id — the id a single engine fed the
// same insert sequence would have handed out.
func (s *Sharded) Insert(start, end Timestamp, terms ...string) ObjectID {
	iv := NewInterval(start, end) // validate before interning any terms
	s.dmu.Lock()
	elems := s.dict.AddObject(terms)
	ds := s.dict.Len()
	s.dmu.Unlock()
	si := s.smap.Route(iv, elems)
	// Extend the extent before the object becomes visible so planning
	// stays conservative: a query planned mid-insert may fan out to a
	// still-empty shard (harmless) but can never prune a populated one.
	s.emu.Lock()
	ex := &s.extents[si]
	if !ex.set || iv.Start < ex.min {
		ex.min = iv.Start
	}
	if !ex.set || iv.End > ex.max {
		ex.max = iv.End
	}
	ex.set = true
	s.emu.Unlock()
	return s.stores[si].Append(iv, elems, ds)
}

// Delete tombstones an object by global id, locating its shard by id
// lookup. Unknown ids are an error, as in Engine.Delete.
func (s *Sharded) Delete(id ObjectID) error {
	for i := range s.stores {
		if _, ok := s.snapshotOne(i).Internal(id); ok {
			s.stores[i].Delete(id)
			return nil
		}
	}
	return fmt.Errorf("temporalir: unknown object %d", id)
}

// Object returns the lifespan and terms of an object by global id.
func (s *Sharded) Object(id ObjectID) (Interval, []string, error) {
	for i := range s.stores {
		g := s.snapshotOne(i)
		o, ok := g.Lookup(id)
		if !ok {
			continue
		}
		s.dmu.RLock()
		terms := make([]string, len(o.Elems))
		for k, el := range o.Elems {
			terms[k] = s.dict.Term(el)
		}
		s.dmu.RUnlock()
		return o.Interval, terms, nil
	}
	return Interval{}, nil, fmt.Errorf("temporalir: unknown object %d", id)
}

// RefreshScorer rebuilds the ranked-search IDF statistics from global
// corpus frequencies — per-shard element frequencies and live counts
// summed into ONE scorer installed on every shard, so per-shard top-k
// scores are comparable (and identical) to a single engine's.
func (s *Sharded) RefreshScorer() {
	var freqs []int
	n := 0
	for i := range s.stores {
		c := s.snapshotOne(i).Coll()
		n += c.Len()
		for e, f := range c.ElemFreqs() {
			if e >= len(freqs) {
				freqs = append(freqs, make([]int, e+1-len(freqs))...)
			}
			freqs[e] += f
		}
	}
	sc := rank.NewScorerFromFreqs(freqs, n, rank.ScorerConfig{})
	for i := range s.stores {
		s.stores[i].SetScorer(sc)
	}
}

// ensureScorer makes sure every shard carries a scorer, computing the
// global one on first ranked use. Concurrent first calls may both
// compute; publication is serialized per store, so the race is benign.
func (s *Sharded) ensureScorer() {
	for i := range s.stores {
		if s.snapshotOne(i).Scorer() == nil {
			s.RefreshScorer()
			return
		}
	}
}

// SetCompactionPolicy installs the automatic-compaction policy on every
// shard. Thresholds apply per shard — that is the point: N memtables
// and N compactions proceed independently and in parallel.
func (s *Sharded) SetCompactionPolicy(p CompactionPolicy) {
	for i := range s.stores {
		s.stores[i].SetPolicy(p)
	}
}

// Compact compacts every shard in parallel over the engine's pool and
// aggregates the outcome. Per-shard failures (including
// ErrCompactionRunning on shards with a background pass in flight) are
// joined; shards that succeed still compact.
func (s *Sharded) Compact(ctx context.Context) (CompactionStats, error) {
	pool := s.executor()
	errs := make([]error, len(s.stores))
	pool.Map(len(s.stores), func(i int) {
		_, errs[i] = s.stores[i].Compact(ctx)
	})
	return s.CompactStats(), errors.Join(errs...)
}

// CompactStats aggregates the shards' generational state: counts and
// totals sum; the Last* phase durations take the slowest shard (the
// wall-time view of a parallel compaction); InProgress is true while
// any shard compacts.
func (s *Sharded) CompactStats() CompactionStats {
	var out CompactionStats
	objects := 0
	for i := range s.stores {
		st := s.stores[i].Stats()
		out.Epoch += st.Epoch
		out.Compactions += st.Compactions
		out.InProgress = out.InProgress || st.InProgress
		out.BaseObjects += st.BaseObjects
		out.MemObjects += st.MemObjects
		out.MemBytes += st.MemBytes
		out.Tombstones += st.Tombstones
		out.LastDropped += st.LastDropped
		out.LastMerged += st.LastMerged
		out.TotalDuration += st.TotalDuration
		out.TotalDropped += st.TotalDropped
		out.TotalMerged += st.TotalMerged
		out.ReclaimedBytes += st.ReclaimedBytes
		if st.LastDuration > out.LastDuration {
			out.LastDuration = st.LastDuration
		}
		if st.LastCopy > out.LastCopy {
			out.LastCopy = st.LastCopy
		}
		if st.LastBuild > out.LastBuild {
			out.LastBuild = st.LastBuild
		}
		if st.LastSwap > out.LastSwap {
			out.LastSwap = st.LastSwap
		}
		objects += st.BaseObjects + st.MemObjects
	}
	if objects > 0 {
		out.DeadRatio = float64(out.Tombstones) / float64(objects)
	}
	return out
}

// SetParallelism replaces the engine's worker pool (n <= 0 restores the
// shared GOMAXPROCS default), tuning the scatter fan-out width.
func (s *Sharded) SetParallelism(n int) {
	if n <= 0 {
		s.pool.Store(nil)
		return
	}
	s.pool.Store(exec.NewPool(n))
}

// executor returns the engine's pool (the shared default unless
// SetParallelism installed one).
func (s *Sharded) executor() *exec.Pool {
	if p := s.pool.Load(); p != nil {
		return p
	}
	return defaultPool
}

// PoolStats returns the fan-out counters of the current worker pool.
func (s *Sharded) PoolStats() exec.PoolStats { return s.executor().Stats() }

// RoutedMethods returns the sub-methods the shards' routers dispatch
// across (every shard routes over the same set), or nil when the engine
// does not use the Routed method.
func (s *Sharded) RoutedMethods() []Method {
	if len(s.routers) == 0 || s.routers[0] == nil {
		return nil
	}
	names := s.routers[0].Methods()
	ms := make([]Method, len(names))
	for i, n := range names {
		ms[i] = Method(n)
	}
	return ms
}

// RouteDecisions sums each sub-method's routing decisions across the
// shard routers, aligned with RoutedMethods; nil for non-routed
// engines.
func (s *Sharded) RouteDecisions() []uint64 {
	if len(s.routers) == 0 || s.routers[0] == nil {
		return nil
	}
	out := make([]uint64, len(s.routers[0].Methods()))
	for _, r := range s.routers {
		if r == nil {
			continue
		}
		for i := range out {
			out[i] += r.Decisions(i)
		}
	}
	return out
}

// ShardStat is one shard's row in ShardStats.
type ShardStat struct {
	Shard       int    `json:"shard"`
	Objects     int    `json:"objects"`
	MemObjects  int    `json:"memtable_objects"`
	Tombstones  int    `json:"tombstones"`
	SizeBytes   int64  `json:"size_bytes"`
	Epoch       uint64 `json:"epoch"`
	Compactions uint64 `json:"compactions"`
	// HasExtent is false for a shard that never held an object; the
	// extent fields are meaningless then.
	HasExtent   bool      `json:"has_extent"`
	ExtentStart Timestamp `json:"extent_start,omitempty"`
	ExtentEnd   Timestamp `json:"extent_end,omitempty"`
}

// ShardStats returns one row per shard.
func (s *Sharded) ShardStats() []ShardStat {
	out := make([]ShardStat, len(s.stores))
	s.emu.Lock()
	extents := append([]extent(nil), s.extents...)
	s.emu.Unlock()
	for i := range s.stores {
		g := s.snapshotOne(i)
		st := s.stores[i].Stats()
		out[i] = ShardStat{
			Shard:       i,
			Objects:     g.Len(),
			MemObjects:  st.MemObjects,
			Tombstones:  st.Tombstones,
			SizeBytes:   g.SizeBytes(),
			Epoch:       st.Epoch,
			Compactions: st.Compactions,
			HasExtent:   extents[i].set,
			ExtentStart: extents[i].min,
			ExtentEnd:   extents[i].max,
		}
	}
	return out
}

// CoordinatorStats summarizes the scatter-gather coordinator: shard
// layout plus cumulative query/cut/prune counters.
type CoordinatorStats struct {
	Shards       int    `json:"shards"`
	Partition    string `json:"partition"`
	Queries      uint64 `json:"queries"`
	ShardsCut    uint64 `json:"shards_cut"`
	ShardsPruned uint64 `json:"shards_pruned"`
}

// CoordinatorStats returns the coordinator's cumulative counters.
func (s *Sharded) CoordinatorStats() CoordinatorStats {
	return CoordinatorStats{
		Shards:       len(s.stores),
		Partition:    s.smap.Kind().String(),
		Queries:      s.queries.Load(),
		ShardsCut:    s.shardsCut.Load(),
		ShardsPruned: s.shardsPruned.Load(),
	}
}

// plan selects the shards whose observed extent can overlap the query
// interval. Extents only grow, so skipping a non-overlapping shard can
// never lose a match; shards that never held an object are skipped too.
func (s *Sharded) plan(iv Interval) (planned []int, pruned int) {
	s.emu.Lock()
	defer s.emu.Unlock()
	for i := range s.extents {
		ex := &s.extents[i]
		if !ex.set || ex.max < iv.Start || iv.End < ex.min {
			pruned++
			continue
		}
		planned = append(planned, i)
	}
	return planned, pruned
}
