//go:build invariants

package temporalir

import (
	"context"
	"testing"
)

// TestAssertEngineLockedFires pins the dynamic half of the lock-guard
// contract: calling the lock-requiring lookupLocked helper without e.dmu
// held must abort under the invariants build. The static analyzer proves
// the lock is taken on every in-tree path; this assertion catches future
// paths the linter's annotations do not cover.
func TestAssertEngineLockedFires(t *testing.T) {
	if !engineInvariantsEnabled {
		t.Fatal("invariants build tag set but engineInvariantsEnabled is false")
	}
	b := NewBuilder()
	b.Add(1, 5, "alpha")
	e, err := b.Build(TIF, Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("lookupLocked() without e.dmu held: expected invariant panic, got none")
		}
	}()
	// lint:guard-ok deliberate contract violation under test
	e.lookupLocked("alpha")
}

// TestAssertEngineLockedSilentUnderLock checks both lock grades satisfy
// the assertion.
func TestAssertEngineLockedSilentUnderLock(t *testing.T) {
	b := NewBuilder()
	b.Add(1, 5, "alpha")
	e, err := b.Build(TIF, Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	e.dmu.RLock()
	e.lookupLocked("alpha")
	e.dmu.RUnlock()
	e.dmu.Lock()
	e.lookupLocked("alpha")
	e.dmu.Unlock()
}

// TestGenerationInvariantsExercised publishes a stream of generations
// (inserts, deletes, compaction) with checkGeneration live on every
// publish — any structural violation panics the test.
func TestGenerationInvariantsExercised(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 32; i++ {
		b.Add(Timestamp(i), Timestamp(i+10), "alpha", "beta")
	}
	e, err := b.Build(IRHintPerf, Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for i := 0; i < 16; i++ {
		e.Insert(Timestamp(i), Timestamp(i+3), "gamma")
	}
	for id := ObjectID(0); id < 24; id += 2 {
		if err := e.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
	}
	if _, err := e.Compact(context.Background()); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if got := e.Len(); got != 32+16-12 {
		t.Fatalf("Len after compact = %d, want %d", got, 32+16-12)
	}
}
