//go:build invariants

package temporalir

import "testing"

// TestAssertEngineLockedFires pins the dynamic half of the lock-guard
// contract: calling the lock-requiring live() helper without e.mu held
// must abort under the invariants build. The static analyzer proves the
// lock is taken on every in-tree path; this assertion catches future
// paths the linter's annotations do not cover.
func TestAssertEngineLockedFires(t *testing.T) {
	if !engineInvariantsEnabled {
		t.Fatal("invariants build tag set but engineInvariantsEnabled is false")
	}
	b := NewBuilder()
	b.Add(1, 5, "alpha")
	e, err := b.Build(TIF, Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("live() without e.mu held: expected invariant panic, got none")
		}
	}()
	// lint:guard-ok deliberate contract violation under test
	e.live()
}

// TestAssertEngineLockedSilentUnderLock checks both lock grades satisfy
// the assertion.
func TestAssertEngineLockedSilentUnderLock(t *testing.T) {
	b := NewBuilder()
	b.Add(1, 5, "alpha")
	e, err := b.Build(TIF, Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	e.mu.RLock()
	e.live()
	e.mu.RUnlock()
	e.mu.Lock()
	e.live()
	e.mu.Unlock()
}
