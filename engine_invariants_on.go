//go:build invariants

package temporalir

import "sync"

// This file is the engine half of the `-tags invariants` runtime
// assertion layer: the dynamic counterpart of the static lock-guard
// analyzer in internal/tools/irlint. The linter proves the lock is taken
// on every textual path; these assertions catch the cases it cannot see
// (callers of irlint:locked helpers reached through new code paths).

// engineInvariantsEnabled reports whether the engine's runtime assertion
// layer is compiled in.
const engineInvariantsEnabled = true

// assertEngineLocked panics if mu is not held (read or write) by anyone.
// It exploits TryLock: acquiring the exclusive lock succeeds only when no
// reader or writer holds mu, so success proves the caller violated the
// "must hold the lock" contract (today the dictionary lock e.dmu). On
// failure somebody holds the lock — by the contract, the caller — and
// the probe cost is a single atomic.
func assertEngineLocked(mu *sync.RWMutex, site string) {
	if mu.TryLock() {
		mu.Unlock()
		// lint:panic-ok invariants-build assertion, compiled out of normal builds
		panic("temporalir: " + site + " called without holding the required lock (invariant violation)")
	}
}
