package temporalir_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	temporalir "repro"
	"repro/internal/postings"
	"repro/internal/testutil"
)

// forceBitmapPaths lowers the container thresholds so the seeded
// differential workloads (hundreds of objects, not thousands) exercise
// the bitmap and galloping paths, restoring the production values when
// the test ends.
func forceBitmapPaths(t *testing.T) {
	t.Helper()
	oldCutoff, oldRatio := postings.BitmapCutoff, postings.GallopRatio
	postings.BitmapCutoff = 8
	postings.GallopRatio = 2
	t.Cleanup(func() {
		postings.BitmapCutoff = oldCutoff
		postings.GallopRatio = oldRatio
	})
}

// routedAndAllMethods is the differential line-up including the
// adaptive meta-method.
func routedAndAllMethods() []string {
	return append(methodNames(), string(temporalir.Routed))
}

// TestDifferentialBitmapContainers re-runs the full cross-method
// differential harness — every method plus the routed meta-method, all
// workloads, boundary sweep included — with the container thresholds
// forced low, so every intersection goes through the bitmap and
// galloping kernels and must still be byte-identical (SHA-256 workload
// checksums) to the brute-force oracle.
func TestDifferentialBitmapContainers(t *testing.T) {
	forceBitmapPaths(t)
	for _, w := range testutil.DefaultDifferentialWorkloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			testutil.CheckDifferential(t, w, routedAndAllMethods(),
				func(name string, c *temporalir.Collection) testutil.QueryIndex {
					ix, err := temporalir.NewIndex(temporalir.Method(name), c, temporalir.Options{})
					if err != nil {
						t.Fatalf("building %s: %v", name, err)
					}
					return ix
				})
		})
	}
}

// TestDifferentialRouted runs the routed meta-method (production
// thresholds) through the standard harness: whatever the router picks
// per query, results must match the oracle checksum-for-checksum.
func TestDifferentialRouted(t *testing.T) {
	for _, w := range testutil.DefaultDifferentialWorkloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			testutil.CheckDifferential(t, w, []string{string(temporalir.Routed)},
				func(name string, c *temporalir.Collection) testutil.QueryIndex {
					ix, err := temporalir.NewIndex(temporalir.Method(name), c, temporalir.Options{})
					if err != nil {
						t.Fatalf("building %s: %v", name, err)
					}
					return ix
				})
		})
	}
}

// TestDifferentialDeletedFractions checks the bitmap-forced and routed
// paths across deletion lifecycles: with 0%, 25% and 50% of the corpus
// tombstoned, the engine's workload checksum must match the lifecycle
// oracle both before and after compaction physically drops the dead
// objects.
func TestDifferentialDeletedFractions(t *testing.T) {
	forceBitmapPaths(t)
	w := testutil.DefaultDifferentialWorkloads()[0]
	c := testutil.RandomCollection(w.Config)
	queries := w.WorkloadQueries()
	methods := []temporalir.Method{
		temporalir.TIF, temporalir.TIFHintMerge, temporalir.TIFHintSlicing,
		temporalir.IRHintPerf, temporalir.Routed,
	}
	for _, frac := range []int{0, 25, 50} {
		for _, m := range methods {
			frac, m := frac, m
			t.Run(fmt.Sprintf("%s/deleted-%d%%", m, frac), func(t *testing.T) {
				eng, err := temporalir.EngineFromCollection(c, m, temporalir.Options{})
				if err != nil {
					t.Fatalf("EngineFromCollection: %v", err)
				}
				oracle := testutil.NewLifecycleOracle(c)
				n := len(c.Objects) * frac / 100
				for i := 0; i < n; i++ {
					victim := temporalir.ObjectID((i * 13) % len(c.Objects))
					if oracle.Delete(victim) {
						if err := eng.Delete(victim); err != nil {
							t.Fatalf("Delete(%d): %v", victim, err)
						}
					}
				}
				wantSum := testutil.WorkloadChecksum(oracle.QueryAll(queries))
				if got := checksumEngine(t, eng, queries); got != wantSum {
					t.Fatalf("tombstoned checksum mismatch: %s != %s", got, wantSum)
				}
				if _, err := eng.Compact(context.Background()); err != nil {
					t.Fatalf("Compact: %v", err)
				}
				if got := checksumEngine(t, eng, queries); got != wantSum {
					t.Fatalf("post-compaction checksum mismatch: %s != %s", got, wantSum)
				}
				if eng.Len() != oracle.Len() {
					t.Fatalf("Len = %d, oracle %d", eng.Len(), oracle.Len())
				}
			})
		}
	}
}

// TestRoutedEngineBasics covers the routed engine surface: sub-method
// exposure, decision counting across queries, and construction errors
// (self-routing, duplicates, unknown sub-methods).
func TestRoutedEngineBasics(t *testing.T) {
	w := testutil.DefaultDifferentialWorkloads()[0]
	c := testutil.RandomCollection(w.Config)
	eng, err := temporalir.EngineFromCollection(c, temporalir.Routed, temporalir.Options{})
	if err != nil {
		t.Fatalf("EngineFromCollection: %v", err)
	}
	want := temporalir.DefaultRoutedMethods()
	got := eng.RoutedMethods()
	if len(got) != len(want) {
		t.Fatalf("RoutedMethods = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RoutedMethods[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	queries := w.WorkloadQueries()
	for _, q := range queries {
		terms := make([]string, len(q.Elems))
		for i, e := range q.Elems {
			terms[i] = fmt.Sprintf("e%d", e)
		}
		eng.Search(q.Interval.Start, q.Interval.End, terms...)
	}
	var total uint64
	for _, n := range eng.RouteDecisions() {
		total += n
	}
	// Unknown terms short-circuit before the index; only resolvable
	// queries reach the router, so the tally is positive but need not
	// equal len(queries).
	if total == 0 {
		t.Fatal("no routing decisions recorded after a full workload")
	}

	// A non-routed engine exposes no routing surface.
	plain, err := temporalir.EngineFromCollection(c, temporalir.TIF, temporalir.Options{})
	if err != nil {
		t.Fatalf("EngineFromCollection(TIF): %v", err)
	}
	if plain.RoutedMethods() != nil || plain.RouteDecisions() != nil {
		t.Fatal("non-routed engine exposes routing state")
	}

	// Construction errors.
	for _, bad := range [][]temporalir.Method{
		{temporalir.Routed},
		{temporalir.TIF, temporalir.TIF},
		{temporalir.Method("nope")},
	} {
		if _, err := temporalir.NewIndex(temporalir.Routed, c, temporalir.Options{RoutedMethods: bad}); err == nil {
			t.Errorf("NewIndex(Routed, %v) succeeded, want error", bad)
		}
	}
}

// TestRoutedCompactRace races routed queries against compaction swaps:
// the router must survive generation replacement (the engine re-installs
// it on every rebuild) with decision counts strictly growing and every
// concurrent result matching the oracle checksum.
func TestRoutedCompactRace(t *testing.T) {
	w := testutil.DefaultDifferentialWorkloads()[1]
	c := testutil.RandomCollection(w.Config)
	queries := w.WorkloadQueries()
	eng, err := temporalir.EngineFromCollection(c, temporalir.Routed, temporalir.Options{})
	if err != nil {
		t.Fatalf("EngineFromCollection: %v", err)
	}
	oracle := testutil.NewLifecycleOracle(c)
	wantSum := testutil.WorkloadChecksum(oracle.QueryAll(queries))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, 4)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for first := true; ; first = false {
				if !first {
					// Always complete at least one full pass, so the
					// decision-tally assertion below has data even when
					// the compactions finish before the workers spin up.
					select {
					case <-stop:
						return
					default:
					}
				}
				rows := make([][]temporalir.ObjectID, len(queries))
				for i, res := range eng.SearchBatch(queries) {
					if res.Err != nil {
						errs <- res.Err.Error()
						return
					}
					rows[i] = res.IDs
				}
				if got := testutil.WorkloadChecksum(rows); got != wantSum {
					select {
					case errs <- got:
					default:
					}
					return
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		if _, err := eng.Compact(context.Background()); err != nil {
			t.Fatalf("Compact %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case got := <-errs:
		t.Fatalf("concurrent routed checksum mismatch: %s != %s", got, wantSum)
	default:
	}
	// The router survived the swaps: decisions kept accumulating on the
	// one shared instance.
	var total uint64
	for _, n := range eng.RouteDecisions() {
		total += n
	}
	if total == 0 {
		t.Fatal("router lost its decision tally across compactions")
	}
}
