package temporalir

import (
	"context"

	"repro/internal/exec"
	"repro/internal/model"
)

// Engine-level concurrent execution: batched searches over the bounded
// worker pool of internal/exec, context-aware single searches, and the
// intra-query fan-out hook for HINT-backed indices.
//
// Locking discipline: every batch entry point takes e.mu.RLock once, for
// the whole batch, and captures the tombstone-filtering view plus the
// pool before fanning out. The worker goroutines touch only those
// captured values — never the guarded fields — and the lock outlives
// them, because Map returns only after every worker has finished. Writers
// therefore serialize against whole batches, exactly as they do against
// single searches.

// Result is one row of a batch search: the matching ids in ascending
// order, or the error that prevented the query from running (today only
// context cancellation or timeout).
type Result struct {
	IDs []ObjectID
	Err error
}

// parallelIndex is implemented by the index variants that can fan one
// query's partition scans across a worker pool. Engines fall back to the
// serial Query for the rest of the family.
type parallelIndex interface {
	QueryP(q Query, pool *exec.Pool) []ObjectID
}

// queryP answers q with intra-query parallelism when the inner index
// supports it, then filters tombstones exactly like Query.
func (li liveIndex) queryP(q Query, pool *exec.Pool) []ObjectID {
	var ids []ObjectID
	if p, ok := li.inner.(parallelIndex); ok {
		ids = p.QueryP(q, pool)
	} else {
		ids = li.inner.Query(q)
	}
	if len(li.deleted) == 0 {
		return ids
	}
	w := 0
	for _, id := range ids {
		if !li.deleted[id] {
			ids[w] = id
			w++
		}
	}
	return ids[:w]
}

// defaultPool serves engines that never called SetParallelism; sized to
// GOMAXPROCS and shared, so the process-wide query concurrency stays
// bounded no matter how many engines run batches at once.
var defaultPool = exec.NewPool(0)

// SetParallelism replaces the engine's worker pool with one of the given
// size (n <= 0 restores the GOMAXPROCS default). It tunes both batch
// fan-out and intra-query fan-out; in-flight batches keep the pool they
// started with.
func (e *Engine) SetParallelism(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pool = exec.NewPool(n)
}

// executor returns the engine's pool. Callers must hold e.mu.
//
// irlint:locked mu
func (e *Engine) executor() *exec.Pool {
	assertEngineLocked(&e.mu, "Engine.executor")
	if e.pool != nil {
		return e.pool
	}
	return defaultPool
}

// SearchBatch evaluates many element-id queries concurrently over the
// engine's pool, with intra-query fan-out for the HINT-backed methods.
// results[i] corresponds to queries[i]; ids are in ascending order, so a
// batch result is byte-identical to running Query serially. The read
// lock is held once for the whole batch: mutations wait for the batch,
// and the batch sees one consistent snapshot.
func (e *Engine) SearchBatch(queries []Query) []Result {
	e.mu.RLock()
	defer e.mu.RUnlock()
	li := e.live()
	pool := e.executor()
	results := make([]Result, len(queries))
	pool.Map(len(queries), func(i int) {
		ids := li.queryP(queries[i], pool)
		SortIDs(ids)
		results[i] = Result{IDs: ids}
	})
	return results
}

// SearchBatchCtx is SearchBatch with cooperative cancellation: queries
// not yet started when ctx fires are marked with Err = ctx.Err() and nil
// IDs; queries already running complete normally.
func (e *Engine) SearchBatchCtx(ctx context.Context, queries []Query) []Result {
	e.mu.RLock()
	defer e.mu.RUnlock()
	li := e.live()
	pool := e.executor()
	results := make([]Result, len(queries))
	started := make([]bool, len(queries))
	_ = pool.MapCtx(ctx, len(queries), func(i int) {
		started[i] = true
		ids := li.queryP(queries[i], pool)
		SortIDs(ids)
		results[i] = Result{IDs: ids}
	})
	if err := ctx.Err(); err != nil {
		for i := range results {
			if !started[i] {
				results[i] = Result{Err: err}
			}
		}
	}
	return results
}

// SearchCtx is Search with cancellation and timeout support: it returns
// ctx.Err() as soon as ctx fires, even mid-query. The underlying index
// scan cannot be interrupted, so an abandoned query finishes (and
// releases the read lock) in the background; the bound on such strays is
// the caller's concurrency, which the HTTP server caps via MaxInFlight.
func (e *Engine) SearchCtx(ctx context.Context, start, end Timestamp, terms ...string) ([]ObjectID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	done := make(chan []ObjectID, 1)
	go func() { done <- e.Search(start, end, terms...) }()
	select {
	case ids := <-done:
		return ids, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// SearchTermsBatch resolves each row of terms against the dictionary and
// evaluates the resulting queries as one batch — the string-surface
// convenience over SearchBatch. Rows with unknown terms resolve to empty
// results, matching Search.
func (e *Engine) SearchTermsBatch(start, end Timestamp, termRows [][]string) []Result {
	return e.SearchTermsBatchCtx(context.Background(), start, end, termRows)
}

// SearchTermsBatchCtx is SearchTermsBatch with cooperative cancellation,
// following the SearchBatchCtx row contract: rows not started when ctx
// fires carry Err = ctx.Err() and nil IDs.
func (e *Engine) SearchTermsBatchCtx(ctx context.Context, start, end Timestamp, termRows [][]string) []Result {
	e.mu.RLock()
	defer e.mu.RUnlock()
	iv := model.Canon(start, end)
	queries := make([]Query, len(termRows))
	known := make([]bool, len(termRows))
	for i, terms := range termRows {
		elems := make([]ElemID, 0, len(terms))
		ok := true
		for _, t := range terms {
			id, found := e.dict.Lookup(t)
			if !found {
				ok = false
				break
			}
			elems = append(elems, id)
		}
		known[i] = ok
		queries[i] = Query{Interval: iv, Elems: model.NormalizeElems(elems)}
	}
	li := e.live()
	pool := e.executor()
	results := make([]Result, len(queries))
	started := make([]bool, len(queries))
	_ = pool.MapCtx(ctx, len(queries), func(i int) {
		started[i] = true
		if !known[i] {
			return
		}
		ids := li.queryP(queries[i], pool)
		SortIDs(ids)
		results[i] = Result{IDs: ids}
	})
	if err := ctx.Err(); err != nil {
		for i := range results {
			if !started[i] {
				results[i] = Result{Err: err}
			}
		}
	}
	return results
}
