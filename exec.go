package temporalir

import (
	"context"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/maint"
	"repro/internal/model"
	"repro/internal/obs"
)

// Engine-level concurrent execution: batched searches over the bounded
// worker pool of internal/exec, context-aware single searches, and the
// intra-query fan-out hook for HINT-backed indices.
//
// Concurrency discipline: every batch entry point loads one generation
// snapshot and fans out over it. The snapshot is immutable — writers
// publish new generations instead of mutating it — so workers run
// without any lock and a batch sees one consistent view no matter how
// many inserts, deletes or compactions land mid-flight. Only term
// resolution takes the (tiny) dictionary read lock, once per batch.

// Result is one row of a batch search: the matching ids in ascending
// order, or the error that prevented the query from running (today only
// context cancellation or timeout).
type Result struct {
	IDs []ObjectID
	Err error
}

// atomicPool holds the engine's replaceable worker pool.
type atomicPool = atomic.Pointer[exec.Pool]

// defaultPool serves engines that never called SetParallelism; sized to
// GOMAXPROCS and shared, so the process-wide query concurrency stays
// bounded no matter how many engines run batches at once.
var defaultPool = exec.NewPool(0)

// SetParallelism replaces the engine's worker pool with one of the given
// size (n <= 0 restores the GOMAXPROCS default). It tunes both batch
// fan-out and intra-query fan-out; in-flight batches keep the pool they
// started with.
func (e *Engine) SetParallelism(n int) {
	e.pool.Store(exec.NewPool(n))
}

// executor returns the engine's pool (the shared default unless
// SetParallelism installed one).
func (e *Engine) executor() *exec.Pool {
	if p := e.pool.Load(); p != nil {
		return p
	}
	return defaultPool
}

// PoolStats returns the cumulative fan-out counters of the engine's
// current worker pool. The counters reset when SetParallelism swaps the
// pool; scrape-time consumers should treat them as best-effort.
func (e *Engine) PoolStats() exec.PoolStats {
	return e.executor().Stats()
}

// runQuery evaluates one query against a generation snapshot with
// intra-query fan-out, returning externally-translated ids in ascending
// order.
func runQuery(g *maint.Generation, q Query, pool *exec.Pool) []ObjectID {
	ids := g.QueryP(q, pool)
	out := finishIDs(g, ids, q.Trace)
	q.Trace.AddResults(len(out))
	return out
}

// SearchBatch evaluates many element-id queries concurrently over the
// engine's pool, with intra-query fan-out for the HINT-backed methods.
// results[i] corresponds to queries[i]; ids are in ascending order, so a
// batch result is byte-identical to running Query serially. The whole
// batch runs against one generation snapshot: mutations landing
// mid-batch are invisible to it, and the batch never blocks them.
func (e *Engine) SearchBatch(queries []Query) []Result {
	g := e.snapshot()
	pool := e.executor()
	results := make([]Result, len(queries))
	pool.Map(len(queries), func(i int) {
		results[i] = Result{IDs: runQuery(g, queries[i], pool)}
	})
	return results
}

// SearchBatchCtx is SearchBatch with cooperative cancellation: queries
// not yet started when ctx fires are marked with Err = ctx.Err() and nil
// IDs; queries already running complete normally.
func (e *Engine) SearchBatchCtx(ctx context.Context, queries []Query) []Result {
	g := e.snapshot()
	pool := e.executor()
	tr := obs.TraceFromContext(ctx)
	tr.SetBatch(len(queries))
	results := make([]Result, len(queries))
	started := make([]bool, len(queries))
	_ = pool.MapCtx(ctx, len(queries), func(i int) {
		started[i] = true
		q := queries[i]
		if q.Trace == nil {
			// The batch rows share the context trace; the accumulators
			// are atomic, so concurrent rows record safely.
			q.Trace = tr
		}
		results[i] = Result{IDs: runQuery(g, q, pool)}
	})
	if err := ctx.Err(); err != nil {
		for i := range results {
			if !started[i] {
				results[i] = Result{Err: err}
			}
		}
	}
	return results
}

// SearchCtx is Search with cancellation and timeout support: it returns
// ctx.Err() as soon as ctx fires, even mid-query. The underlying index
// scan cannot be interrupted, so an abandoned query finishes in the
// background; the bound on such strays is the caller's concurrency,
// which the HTTP server caps via MaxInFlight.
func (e *Engine) SearchCtx(ctx context.Context, start, end Timestamp, terms ...string) ([]ObjectID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr := obs.TraceFromContext(ctx)
	done := make(chan []ObjectID, 1)
	// irlint:goroutine-exits send into the cap-1 buffer never blocks, so the goroutine exits when the scan completes even if ctx fired and the result is abandoned
	go func() { done <- e.searchTraced(tr, start, end, terms) }()
	select {
	case ids := <-done:
		return ids, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// SearchTopKCtx is SearchTopK with cancellation and timeout support: it
// returns ctx.Err() as soon as ctx fires, even while ranking is still
// running. Like SearchCtx, the abandoned evaluation finishes in the
// background; callers bound strays via their own concurrency cap.
func (e *Engine) SearchTopKCtx(ctx context.Context, start, end Timestamp, k int, terms ...string) ([]ScoredResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr := obs.TraceFromContext(ctx)
	done := make(chan []ScoredResult, 1)
	// irlint:goroutine-exits send into the cap-1 buffer never blocks, so the goroutine exits when ranking completes even if ctx fired and the result is abandoned
	go func() { done <- e.searchTopKTraced(tr, start, end, k, terms) }()
	select {
	case res := <-done:
		return res, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TimelineCtx is Timeline with cancellation and timeout support,
// following the same detached-evaluation contract as SearchCtx.
func (e *Engine) TimelineCtx(ctx context.Context, start, end Timestamp, buckets int, terms ...string) ([]TimelineBucket, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr := obs.TraceFromContext(ctx)
	done := make(chan []TimelineBucket, 1)
	// irlint:goroutine-exits send into the cap-1 buffer never blocks, so the goroutine exits when bucketing completes even if ctx fired and the result is abandoned
	go func() { done <- e.timelineTraced(tr, start, end, buckets, terms) }()
	select {
	case res := <-done:
		return res, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// SearchTermsBatch resolves each row of terms against the dictionary and
// evaluates the resulting queries as one batch — the string-surface
// convenience over SearchBatch. Rows with unknown terms resolve to empty
// results, matching Search.
func (e *Engine) SearchTermsBatch(start, end Timestamp, termRows [][]string) []Result {
	// irlint:ctx-root deliberately ctx-less convenience surface; callers who need deadlines use SearchTermsBatchCtx
	return e.SearchTermsBatchCtx(context.Background(), start, end, termRows)
}

// SearchTermsBatchCtx is SearchTermsBatch with cooperative cancellation,
// following the SearchBatchCtx row contract: rows not started when ctx
// fires carry Err = ctx.Err() and nil IDs.
func (e *Engine) SearchTermsBatchCtx(ctx context.Context, start, end Timestamp, termRows [][]string) []Result {
	tr := obs.TraceFromContext(ctx)
	tr.SetBatch(len(termRows))
	queries, known := e.planTermRows(tr, start, end, termRows)

	g := e.snapshot()
	pool := e.executor()
	results := make([]Result, len(queries))
	started := make([]bool, len(queries))
	_ = pool.MapCtx(ctx, len(queries), func(i int) {
		started[i] = true
		if !known[i] {
			return
		}
		results[i] = Result{IDs: runQuery(g, queries[i], pool)}
	})
	if err := ctx.Err(); err != nil {
		for i := range results {
			if !started[i] {
				results[i] = Result{Err: err}
			}
		}
	}
	return results
}

// planTermRows resolves every row's terms against the dictionary under
// one read lock (and one plan span), building the batch queries. Rows
// with unknown terms are marked known=false and resolve to empty
// results, matching Search.
func (e *Engine) planTermRows(tr *obs.Trace, start, end Timestamp, termRows [][]string) (queries []Query, known []bool) {
	defer tr.StartStage(obs.StagePlan).End()
	iv := model.Canon(start, end)
	queries = make([]Query, len(termRows))
	known = make([]bool, len(termRows))
	e.dmu.RLock()
	defer e.dmu.RUnlock()
	for i, terms := range termRows {
		elems := make([]ElemID, 0, len(terms))
		ok := true
		for _, t := range terms {
			id, found := e.lookupLocked(t)
			if !found {
				ok = false
				break
			}
			elems = append(elems, id)
		}
		known[i] = ok
		queries[i] = Query{Interval: iv, Elems: model.NormalizeElems(elems), Trace: tr}
	}
	return queries, known
}
