package temporalir_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	temporalir "repro"
	"repro/internal/testutil"
)

// TestCompactUnderConcurrency is the engine-level race test the issue
// asks for: repeated Compact racing SearchBatch, Insert, Delete, Save
// and CompactStats. Run under -race it proves the generational swap
// never lets a reader observe a torn state; the assertions prove batches
// stay internally consistent (sorted rows) throughout.
func TestCompactUnderConcurrency(t *testing.T) {
	w := testutil.DefaultDifferentialWorkloads()[0]
	c := testutil.RandomCollection(w.Config)
	queries := w.WorkloadQueries()[:40]
	eng, err := temporalir.EngineFromCollection(c, temporalir.IRHintPerf, temporalir.Options{})
	if err != nil {
		t.Fatalf("EngineFromCollection: %v", err)
	}
	eng.SetParallelism(4)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		select {
		case <-stop:
		default:
			t.Errorf(format, args...)
		}
	}

	wg.Add(1)
	go func() { // batch reader: rows must stay sorted ascending
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i, r := range eng.SearchBatch(queries) {
				if r.Err != nil {
					fail("batch row %d: %v", i, r.Err)
					return
				}
				for j := 1; j < len(r.IDs); j++ {
					if r.IDs[j-1] >= r.IDs[j] {
						fail("batch row %d not strictly ascending", i)
						return
					}
				}
			}
		}
	}()
	wg.Add(1)
	go func() { // writer: inserts
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			eng.Insert(temporalir.Timestamp(w.Config.DomainLo+int64(i%1000)),
				temporalir.Timestamp(w.Config.DomainLo+int64(i%1000+50)),
				fmt.Sprintf("e%d", i%w.Config.Dict))
		}
	}()
	wg.Add(1)
	go func() { // writer: deletes (unknown ids fine — error ignored)
		defer wg.Done()
		for id := temporalir.ObjectID(0); ; id++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = eng.Delete(id % temporalir.ObjectID(len(c.Objects)*2))
		}
	}()
	wg.Add(1)
	go func() { // Save: must serialize consistent generations mid-compaction
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := eng.Save(io.Discard); err != nil {
				fail("Save: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // stats poller
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			eng.CompactStats()
		}
	}()

	for i := 0; i < 10; i++ {
		if _, err := eng.Compact(context.Background()); err != nil && !errors.Is(err, temporalir.ErrCompactionRunning) {
			t.Fatalf("Compact %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	// Final coherence: one more compaction drains everything and the
	// engine still answers queries consistently.
	if _, err := eng.Compact(context.Background()); err != nil {
		t.Fatalf("final Compact: %v", err)
	}
	if st := eng.CompactStats(); st.Tombstones != 0 || st.MemObjects != 0 {
		t.Fatalf("residue after final compact: %+v", st)
	}
}
