// Package temporalir is a library for time-travel information-retrieval
// queries: given a collection of objects, each carrying a lifespan
// interval and a set of descriptive elements, it answers queries that
// combine a time interval of interest with a set of required elements —
// returning every object whose lifespan overlaps the query interval and
// whose description contains all query elements.
//
// The package implements the complete index family studied in Rauch &
// Bouros, "Fast Indexing for Temporal Information Retrieval" (SIGMOD):
//
//	TIF             the base temporal inverted file (Algorithm 1)
//	TIFSlicing      tIF + time-domain slicing [Berberich et al.]
//	TIFSharding     tIF + staircase sharding [Anand et al.]
//	TIFHintBinary   tIF + per-element HINT, binary-search probes (Alg. 3)
//	TIFHintMerge    tIF + per-element HINT, merge intersections (Alg. 4)
//	TIFHintSlicing  the dual-copy hybrid (Section 3.2)
//	IRHintPerf      irHINT, performance variant (Section 4.1) — the
//	                paper's headline contribution
//	IRHintSize      irHINT, size variant (Section 4.2)
//
// All indices return exactly the same result sets; they differ in query
// throughput, memory footprint and update cost. Use NewIndex (or a typed
// constructor) when objects are already modeled as element-id sets, or the
// Builder/Engine pair for a string-terms convenience layer.
package temporalir

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/exec"
	"repro/internal/join"
	"repro/internal/maint"
	"repro/internal/model"
	"repro/internal/sharding"
	"repro/internal/slicing"
	"repro/internal/tif"
	"repro/internal/tifhint"
)

// Core data-model types, aliased from the internal model package so
// values flow between the public API and internal machinery without
// conversion.
type (
	// Timestamp is a point in the application's time domain.
	Timestamp = model.Timestamp
	// ObjectID identifies an object in a collection.
	ObjectID = model.ObjectID
	// ElemID identifies a descriptive element (term, track, product...).
	ElemID = model.ElemID
	// Interval is a closed time interval [Start, End].
	Interval = model.Interval
	// Object is an <id, interval, elements> triple.
	Object = model.Object
	// Query pairs an interval of interest with required elements.
	Query = model.Query
	// Collection is an ordered set of objects over a shared dictionary.
	Collection = model.Collection
)

// NewInterval returns [start, end], panicking if start > end.
func NewInterval(start, end Timestamp) Interval { return model.NewInterval(start, end) }

// Index is the common surface of every index in the family. Query returns
// matching object ids (order unspecified; use SortIDs for a canonical
// order). Insert adds an object with a fresh id; Delete tombstones an
// object given its full record (indices locate entries by interval and
// id, as the paper's logical-deletion scheme does).
type Index interface {
	Query(q Query) []ObjectID
	Insert(o Object)
	Delete(o Object)
	Len() int
	SizeBytes() int64
}

// SortIDs orders a result set ascending in place.
func SortIDs(ids []ObjectID) { model.SortIDs(ids) }

// Method selects an index implementation.
type Method string

// The eight implementations benchmarked in the paper's evaluation.
const (
	TIF            Method = "tif"
	TIFSlicing     Method = "tif+slicing"
	TIFSharding    Method = "tif+sharding"
	TIFHintBinary  Method = "tif+hint/binary"
	TIFHintMerge   Method = "tif+hint/merge"
	TIFHintSlicing Method = "tif+hint+slicing"
	IRHintPerf     Method = "irhint/perf"
	IRHintSize     Method = "irhint/size"
)

// Routed is the adaptive meta-method: it keeps several of the above
// builds (Options.RoutedMethods; a tuned default otherwise) and routes
// each query to the one a learned cost model over the paper's Section 5
// regimes — interval extent, description size, element frequency —
// expects to be fastest. Result sets are identical to every other
// method; only per-query latency differs.
const Routed Method = "routed"

// Methods lists every implementation in the order the paper's tables use.
func Methods() []Method {
	return []Method{
		TIFSlicing, TIFSharding,
		TIFHintBinary, TIFHintMerge, TIFHintSlicing,
		IRHintPerf, IRHintSize,
	}
}

// Options tunes index construction. Zero values select the paper's tuned
// defaults (Section 5.2): 50 slices, m=10 for the binary variant, m=5 for
// merge/hybrid, cost-model m for irHINT.
type Options struct {
	// M fixes the HINT hierarchy bits where applicable.
	M int
	// Slices sets the slice count for TIFSlicing and TIFHintSlicing.
	Slices int
	// MaxShards caps per-list shards for TIFSharding (0 = default 16;
	// negative keeps every ideal shard).
	MaxShards int
	// CostModelM derives M from the HINT cost model (always on for the
	// irHINT variants when M is zero).
	CostModelM bool
	// RoutedMethods selects the sub-builds the Routed meta-method keeps
	// and routes across (nil = DefaultRoutedMethods). Ignored by every
	// other method. Routed itself is rejected as an entry.
	RoutedMethods []Method
}

// NewIndex builds the selected index over a collection.
func NewIndex(m Method, c *Collection, opts Options) (Index, error) {
	switch m {
	case TIF:
		return tif.New(c), nil
	case TIFSlicing:
		var o []slicing.Option
		if opts.Slices > 0 {
			o = append(o, slicing.WithSlices(opts.Slices))
		}
		return slicing.New(c, o...), nil
	case TIFSharding:
		var o []sharding.Option
		if opts.MaxShards != 0 {
			n := opts.MaxShards
			if n < 0 {
				n = 0 // keep every ideal shard
			}
			o = append(o, sharding.WithMaxShards(n))
		}
		return sharding.New(c, o...), nil
	case TIFHintBinary:
		return tifhint.NewBinary(c, hintOpts(opts)...), nil
	case TIFHintMerge:
		return tifhint.NewMerge(c, hintOpts(opts)...), nil
	case TIFHintSlicing:
		o := hintOpts(opts)
		if opts.Slices > 0 {
			o = append(o, tifhint.WithSlices(opts.Slices))
		}
		return tifhint.NewHybrid(c, o...), nil
	case IRHintPerf:
		return core.NewPerf(c, irOpts(opts)...), nil
	case IRHintSize:
		return core.NewSize(c, irOpts(opts)...), nil
	case Routed:
		return newRoutedIndex(c, opts)
	default:
		return nil, fmt.Errorf("temporalir: unknown method %q", m)
	}
}

func hintOpts(opts Options) []tifhint.Option {
	var o []tifhint.Option
	if opts.M > 0 {
		o = append(o, tifhint.WithM(opts.M))
	}
	if opts.CostModelM {
		o = append(o, tifhint.WithCostModelM())
	}
	return o
}

func irOpts(opts Options) []core.Option {
	var o []core.Option
	if opts.M > 0 {
		o = append(o, core.WithM(opts.M))
	}
	return o
}

// Typed constructors for discoverability.

// NewTIF builds the base temporal inverted file.
func NewTIF(c *Collection) Index { return tif.New(c) }

// NewTIFSlicing builds tIF+Slicing with the given slice count (0 =
// paper-tuned 50).
func NewTIFSlicing(c *Collection, slices int) Index {
	ix, _ := NewIndex(TIFSlicing, c, Options{Slices: slices})
	return ix
}

// NewTIFSharding builds tIF+Sharding with the given shard budget
// (0 = default, negative = unlimited ideal shards).
func NewTIFSharding(c *Collection, maxShards int) Index {
	ix, _ := NewIndex(TIFSharding, c, Options{MaxShards: maxShards})
	return ix
}

// NewTIFHintBinary builds the binary-search tIF+HINT variant.
func NewTIFHintBinary(c *Collection, m int) Index {
	ix, _ := NewIndex(TIFHintBinary, c, Options{M: m})
	return ix
}

// NewTIFHintMerge builds the merge-sort tIF+HINT variant.
func NewTIFHintMerge(c *Collection, m int) Index {
	ix, _ := NewIndex(TIFHintMerge, c, Options{M: m})
	return ix
}

// NewTIFHintSlicing builds the dual-copy hybrid.
func NewTIFHintSlicing(c *Collection, m, slices int) Index {
	ix, _ := NewIndex(TIFHintSlicing, c, Options{M: m, Slices: slices})
	return ix
}

// NewIRHintPerf builds the performance irHINT (m = 0 runs the cost model).
func NewIRHintPerf(c *Collection, m int) Index {
	ix, _ := NewIndex(IRHintPerf, c, Options{M: m})
	return ix
}

// NewIRHintSize builds the size irHINT (m = 0 runs the cost model).
func NewIRHintSize(c *Collection, m int) Index {
	ix, _ := NewIndex(IRHintSize, c, Options{M: m})
	return ix
}

// Generational-store surface, aliased from internal/maint so callers
// configure compaction without importing internal packages.
type (
	// CompactionStats reports the engine's generational state and
	// compaction history; see Engine.CompactStats.
	CompactionStats = maint.CompactionStats
	// CompactionPolicy configures automatic background compaction; see
	// Engine.SetCompactionPolicy. The zero value disables it.
	CompactionPolicy = maint.Policy
)

// ErrCompactionRunning is returned by Engine.Compact when a compaction
// (manual or policy-triggered) is already in flight.
var ErrCompactionRunning = maint.ErrCompactionRunning

// EngineFromCollection builds an Engine directly over an element-id
// collection, synthesizing placeholder terms ("e0", "e1", ...) for the
// dictionary — the bridge from the id-level data path (synthetic
// corpora, benchmarks) to the full engine lifecycle. The collection is
// copied; the caller's slice stays detached.
func EngineFromCollection(c *Collection, m Method, opts Options) (*Engine, error) {
	coll := &Collection{
		Objects:  append([]Object(nil), c.Objects...),
		DictSize: c.DictSize,
	}
	n := coll.DictSize
	terms := make([]string, n)
	for i := range terms {
		terms[i] = fmt.Sprintf("e%d", i)
	}
	d := dict.FromTerms(terms)
	for i := range coll.Objects {
		d.AddElems(coll.Objects[i].Elems)
	}
	return newEngine(d, coll, m, opts)
}

// JoinPair is one temporal-join result.
type JoinPair = join.Pair

// Join pairs objects across two collections whose lifespans overlap and
// whose descriptions share at least minShared elements (0 = pure interval
// join) — the temporal IR join the paper lists as future work. The larger
// side is HINT-indexed, the smaller probes it.
func Join(left, right *Collection, minShared int) []JoinPair {
	return join.Join(left, right, join.Config{MinShared: minShared})
}

// SelfJoin pairs objects within one collection the same way, emitting
// each unordered pair once (Left < Right).
func SelfJoin(c *Collection, minShared int) []JoinPair {
	return join.SelfJoin(c, join.Config{MinShared: minShared})
}

// QueryAny evaluates the disjunctive variant of a time-travel IR query:
// objects whose lifespan overlaps the interval and whose description
// contains AT LEAST ONE of the elements. It composes single-element
// conjunctive queries (which every index answers natively) and merges the
// results, so it works uniformly across the whole family.
func QueryAny(ix Index, q Query) []ObjectID {
	if len(q.Elems) == 0 {
		return ix.Query(q)
	}
	var out []ObjectID
	for _, e := range model.NormalizeElems(append([]ElemID(nil), q.Elems...)) {
		out = append(out, ix.Query(Query{Interval: q.Interval, Elems: []ElemID{e}})...)
	}
	model.SortIDs(out)
	return model.DedupIDs(out)
}

// QueryBatch evaluates many queries concurrently over one index using a
// bounded worker pool of the given size (0 = GOMAXPROCS). Indices are
// safe for concurrent readers, so batch workloads — the many-users
// archive-search setting the paper's throughput metric models — scale
// with cores. results[i] corresponds to queries[i]. Engines expose the
// richer SearchBatch, which adds tombstone filtering, intra-query
// fan-out and a shared tunable pool.
func QueryBatch(ix Index, queries []Query, parallelism int) [][]ObjectID {
	pool := exec.NewPool(parallelism)
	results := make([][]ObjectID, len(queries))
	pool.Map(len(queries), func(i int) {
		results[i] = ix.Query(queries[i])
	})
	return results
}
