// Benchmarks regenerating the paper's evaluation artifacts.
//
// Two layers:
//
//   - Benchmark<Method>/... micro-benchmarks: per-index query cost on the
//     ECLOG stand-in under the paper's default workload (0.1% extent,
//     |q.d| = 3). These are the per-cell numbers behind Figure 11;
//     1/ns-per-op is the throughput the figures plot.
//   - BenchmarkFig*/BenchmarkTable* experiment benchmarks: each runs the
//     corresponding internal/bench driver end-to-end at a laptop scale
//     (build + sweep + measure), so `go test -bench=.` reproduces every
//     table and figure. Full-scale runs go through cmd/irbench -scale 1.
package temporalir_test

import (
	"io"
	"sync"
	"testing"

	temporalir "repro"
	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/model"
)

// benchScale keeps `go test -bench=.` minutes-sized; cmd/irbench scales up.
const benchScale = 0.005

var setupOnce sync.Once
var benchColl *model.Collection
var benchQueries []model.Query
var benchIndices map[temporalir.Method]temporalir.Index

func setup() {
	setupOnce.Do(func() {
		benchColl = gen.ECLOGLike(gen.RealConfig{Scale: benchScale, Seed: 7})
		benchQueries = gen.Workload(benchColl, gen.DefaultQueryConfig(), 512, 11)
		benchIndices = make(map[temporalir.Method]temporalir.Index)
		for _, m := range append(temporalir.Methods(), temporalir.TIF) {
			ix, err := temporalir.NewIndex(m, benchColl, temporalir.Options{})
			if err != nil {
				panic(err)
			}
			benchIndices[m] = ix
		}
	})
}

func benchQuery(b *testing.B, m temporalir.Method) {
	setup()
	ix := benchIndices[m]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Query(benchQueries[i%len(benchQueries)])
	}
}

func BenchmarkQueryTIF(b *testing.B)            { benchQuery(b, temporalir.TIF) }
func BenchmarkQueryTIFSlicing(b *testing.B)     { benchQuery(b, temporalir.TIFSlicing) }
func BenchmarkQueryTIFSharding(b *testing.B)    { benchQuery(b, temporalir.TIFSharding) }
func BenchmarkQueryTIFHintBinary(b *testing.B)  { benchQuery(b, temporalir.TIFHintBinary) }
func BenchmarkQueryTIFHintMerge(b *testing.B)   { benchQuery(b, temporalir.TIFHintMerge) }
func BenchmarkQueryTIFHintSlicing(b *testing.B) { benchQuery(b, temporalir.TIFHintSlicing) }
func BenchmarkQueryIRHintPerf(b *testing.B)     { benchQuery(b, temporalir.IRHintPerf) }
func BenchmarkQueryIRHintSize(b *testing.B)     { benchQuery(b, temporalir.IRHintSize) }

// Build-cost micro-benchmarks (the Table 5 "time" column per iteration).
func benchBuild(b *testing.B, m temporalir.Method) {
	setup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := temporalir.NewIndex(m, benchColl, temporalir.Options{})
		if err != nil {
			b.Fatal(err)
		}
		_ = ix.Len()
	}
}

func BenchmarkBuildTIFSlicing(b *testing.B)   { benchBuild(b, temporalir.TIFSlicing) }
func BenchmarkBuildTIFSharding(b *testing.B)  { benchBuild(b, temporalir.TIFSharding) }
func BenchmarkBuildTIFHintMerge(b *testing.B) { benchBuild(b, temporalir.TIFHintMerge) }
func BenchmarkBuildIRHintPerf(b *testing.B)   { benchBuild(b, temporalir.IRHintPerf) }
func BenchmarkBuildIRHintSize(b *testing.B)   { benchBuild(b, temporalir.IRHintSize) }

// Experiment benchmarks: one full driver run per iteration.
func benchExperiment(b *testing.B, name string, scale float64, queries int) {
	exp, ok := bench.Lookup(name)
	if !ok {
		b.Fatalf("unknown experiment %s", name)
	}
	cfg := bench.Config{Scale: scale, NumQueries: queries, Seed: 3, Out: io.Discard}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.Run(cfg)
	}
}

func BenchmarkTable3Stats(b *testing.B)       { benchExperiment(b, "table3", benchScale, 64) }
func BenchmarkFig8SlicingTuning(b *testing.B) { benchExperiment(b, "fig8", 0.002, 64) }
func BenchmarkFig9HintTuning(b *testing.B)    { benchExperiment(b, "fig9", 0.002, 64) }
func BenchmarkFig10TifHintVariants(b *testing.B) {
	benchExperiment(b, "fig10", 0.002, 64)
}
func BenchmarkTable5IndexingCosts(b *testing.B) { benchExperiment(b, "table5", 0.002, 64) }
func BenchmarkFig11RealData(b *testing.B)       { benchExperiment(b, "fig11", 0.002, 64) }
func BenchmarkFig12Synthetic(b *testing.B)      { benchExperiment(b, "fig12", 0.001, 32) }
func BenchmarkTable6Insertions(b *testing.B)    { benchExperiment(b, "table6", 0.002, 32) }
func BenchmarkTable7Deletions(b *testing.B)     { benchExperiment(b, "table7", 0.002, 32) }
func BenchmarkAblations(b *testing.B)           { benchExperiment(b, "ablation", 0.002, 64) }
