// Music IR: the paper's Spotify scenario. Each streaming session spans a
// time period and its description holds the ids of all streamed tracks; a
// time-travel IR query asks for the sessions in a date range where a user
// listened to a given set of tracks (e.g. "Ode to Joy" AND "Für Elise"
// during January 2024).
package main

import (
	"fmt"
	"log"
	"math/rand"

	temporalir "repro"
)

// Catalog of track ids; a handful of hits dominate listening time, the
// long tail is rarely played — the skew that makes time-first indexing
// shine when queries contain popular tracks.
func trackName(rank int) string { return fmt.Sprintf("track-%04d", rank) }

const (
	hour    = temporalir.Timestamp(3600)
	month   = 30 * 24 * hour
	january = 0 * month
)

func main() {
	rng := rand.New(rand.NewSource(99))
	b := temporalir.NewBuilder()

	// 20000 sessions over three months; session length 0.5..4 hours;
	// tracks drawn with a zipf-ish skew over a 2000-track catalog.
	for s := 0; s < 20000; s++ {
		start := temporalir.Timestamp(rng.Int63n(int64(3 * month)))
		length := hour/2 + temporalir.Timestamp(rng.Int63n(int64(7*hour/2)))
		n := 3 + rng.Intn(15)
		tracks := make([]string, n)
		for i := range tracks {
			rank := int(2000 * rng.Float64() * rng.Float64() * rng.Float64())
			tracks[i] = trackName(rank)
		}
		b.Add(start, start+length, tracks...)
	}
	fmt.Printf("sessions: %d\n", b.Len())

	engine, err := b.Build(temporalir.IRHintPerf, temporalir.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// "Sessions in January where both hits were streamed."
	hits := engine.Search(january, january+month, trackName(1), trackName(2))
	fmt.Printf("January sessions with %s and %s: %d\n", trackName(1), trackName(2), len(hits))

	// "Sessions in the first week of February with a deep-tail track."
	feb := january + month
	tail := engine.Search(feb, feb+7*24*hour, trackName(1900))
	fmt.Printf("early-February sessions with %s: %d\n", trackName(1900), len(tail))

	// Session details for the first match.
	if len(hits) > 0 {
		iv, tracks, _ := engine.Object(hits[0])
		fmt.Printf("  e.g. session %d: %.1fh long, %d distinct tracks\n",
			hits[0], float64(iv.Duration())/3600, len(tracks))
	}

	// Temporal join: concurrent sessions that streamed at least 3 of the
	// same tracks — listening parties, in effect. (The join query type is
	// the paper's future work; see internal/join.)
	smaller := temporalir.Collection{}
	for i := 0; i < 2000; i++ { // join a subset to keep the demo quick
		start := temporalir.Timestamp(rng.Int63n(int64(month)))
		n := 3 + rng.Intn(10)
		tracks := make([]temporalir.ElemID, n)
		for j := range tracks {
			tracks[j] = temporalir.ElemID(int(2000 * rng.Float64() * rng.Float64() * rng.Float64()))
		}
		smaller.AppendObject(temporalir.NewInterval(start, start+hour), tracks)
	}
	parties := temporalir.SelfJoin(&smaller, 3)
	fmt.Printf("concurrent session pairs sharing >=3 tracks: %d\n", len(parties))

	// The size variant answers identically with a smaller index — the
	// trade-off quantified in the paper's Table 5.
	small, err := b.Build(temporalir.IRHintSize, temporalir.Options{})
	if err != nil {
		log.Fatal(err)
	}
	again := small.Search(january, january+month, trackName(1), trackName(2))
	fmt.Printf("irHINT-size agrees: %v (index %.1f MB vs %.1f MB)\n",
		len(again) == len(hits),
		float64(small.SizeBytes())/(1<<20), float64(engine.SizeBytes())/(1<<20))
}
