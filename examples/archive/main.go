// Archive search: the paper's motivating Wikipedia scenario. Every
// article revision is an object whose lifespan runs from its creation to
// the next revision; a time-travel IR query like "all revisions between
// 1980 and 2000 relevant to the US elections" combines a date range with
// keywords.
//
// The example generates a synthetic revision archive, indexes it with
// irHINT and with the strongest IR-first baseline, and shows that both
// return identical answers while differing in footprint.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	temporalir "repro"
)

// day converts a day offset from the epoch into the engine's timestamp
// unit (seconds).
func day(d int) temporalir.Timestamp { return temporalir.Timestamp(d) * 86400 }

var topics = [][]string{
	{"elections", "us", "senate", "ballot"},
	{"music", "symphony", "beethoven", "ode"},
	{"physics", "quantum", "entanglement"},
	{"history", "rome", "empire", "caesar"},
	{"computing", "database", "index", "temporal"},
}

var commonWords = []string{"the", "article", "revision", "edit", "page", "reference"}

func main() {
	rng := rand.New(rand.NewSource(7))
	b := temporalir.NewBuilder()

	// 3000 articles, each with a chain of revisions across ~20 years
	// (days 0..7300). A revision's lifespan ends when the next begins.
	for article := 0; article < 3000; article++ {
		topic := topics[rng.Intn(len(topics))]
		at := rng.Intn(7000)
		for at < 7300 {
			next := at + 1 + rng.Intn(400)
			if next > 7300 {
				next = 7300
			}
			terms := append([]string{}, commonWords[:2+rng.Intn(4)]...)
			terms = append(terms, topic[:1+rng.Intn(len(topic))]...)
			b.Add(day(at), day(next)-1, terms...)
			at = next + rng.Intn(50)
		}
	}
	fmt.Printf("archive: %d revisions\n", b.Len())

	build := func(m temporalir.Method) *temporalir.Engine {
		start := time.Now()
		e, err := b.Build(m, temporalir.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("built %-18s in %-8v (%.1f MB)\n",
			m, time.Since(start).Round(time.Millisecond), float64(e.SizeBytes())/(1<<20))
		return e
	}
	irhint := build(temporalir.IRHintPerf)
	slicing := build(temporalir.TIFSlicing)

	// "Revisions from day 1000 to day 1365 relevant to the US elections."
	q := func(e *temporalir.Engine) []temporalir.ObjectID {
		return e.Search(day(1000), day(1365), "us", "elections")
	}
	a, bb := q(irhint), q(slicing)
	fmt.Printf("time-travel query: %d matching revisions (irHINT) vs %d (tIF+Slicing)\n",
		len(a), len(bb))
	if len(a) != len(bb) {
		log.Fatal("indices disagree!")
	}
	for _, id := range a[:min(3, len(a))] {
		iv, terms, _ := irhint.Object(id)
		fmt.Printf("  revision %d alive days %d..%d, terms %v\n",
			id, iv.Start/86400, iv.End/86400, terms)
	}

	// A rarer conjunction over the whole archive span.
	rare := irhint.Search(day(0), day(7300), "beethoven", "ode", "symphony")
	fmt.Printf("full-span rare conjunction: %d revisions\n", len(rare))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
