// Market-basket analysis: the paper's retail scenario. Each basket
// (store visit) covers a time period and lists purchased products; a
// time-travel IR query finds, e.g., all last-month visits where "The
// Shining", "It" and "Misery" were bought together.
//
// The example also exercises the streaming-update path: new baskets
// arrive continuously (Insert) and returns are retracted (Delete),
// mirroring the Table 6/7 workloads.
package main

import (
	"fmt"
	"log"
	"math/rand"

	temporalir "repro"
)

const day = temporalir.Timestamp(86400)

var novels = []string{"the-shining", "it", "misery", "carrie", "cujo"}
var staples = []string{"milk", "bread", "eggs", "coffee", "apples", "rice", "soap", "tea"}

func main() {
	rng := rand.New(rand.NewSource(5))
	b := temporalir.NewBuilder()

	// 15000 visits across a quarter (90 days); a visit takes minutes to
	// hours. Mostly staples; occasionally a novel (or several).
	addVisit := func(add func(start, end temporalir.Timestamp, terms ...string) temporalir.ObjectID) temporalir.ObjectID {
		start := temporalir.Timestamp(rng.Int63n(int64(90 * day)))
		length := temporalir.Timestamp(600 + rng.Int63n(7200))
		n := 2 + rng.Intn(6)
		items := make([]string, 0, n+3)
		for i := 0; i < n; i++ {
			items = append(items, staples[rng.Intn(len(staples))])
		}
		if rng.Intn(4) == 0 {
			k := 1 + rng.Intn(3)
			for i := 0; i < k; i++ {
				items = append(items, novels[rng.Intn(len(novels))])
			}
		}
		return add(start, start+length, items...)
	}
	for v := 0; v < 15000; v++ {
		addVisit(b.Add)
	}

	engine, err := b.Build(temporalir.IRHintPerf, temporalir.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baskets: %d visits indexed (%.1f MB)\n",
		engine.Len(), float64(engine.SizeBytes())/(1<<20))

	// "Last month's visits with all three King novels."
	lastMonth := 60 * day
	trio := engine.Search(lastMonth, 90*day, "the-shining", "it", "misery")
	fmt.Printf("last-month visits buying the trio: %d\n", len(trio))

	// A staple pair over one week: frequent elements, where the paper
	// shows time-first indexing pays off most.
	week := engine.Search(10*day, 17*day, "milk", "bread")
	fmt.Printf("milk+bread visits in week 2: %d\n", len(week))

	// Streaming updates: 500 new visits arrive, 200 old ones are
	// retracted, and queries stay consistent throughout.
	var newIDs []temporalir.ObjectID
	for i := 0; i < 500; i++ {
		newIDs = append(newIDs, addVisit(engine.Insert))
	}
	for i := 0; i < 200; i++ {
		if err := engine.Delete(temporalir.ObjectID(rng.Intn(15000))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after updates: %d live visits\n", engine.Len())
	after := engine.Search(lastMonth, 90*day, "the-shining", "it", "misery")
	fmt.Printf("trio query after updates: %d visits\n", len(after))
	_ = newIDs
}
