// Ranked archive search: the relevance extension (the paper's Section 7
// future work). Instead of returning every matching revision, SearchTopK
// scores matches by element rarity (IDF) blended with temporal overlap
// and returns only the k best — the "most relevant objects overlapping
// the query time interval".
package main

import (
	"fmt"
	"log"
	"math/rand"

	temporalir "repro"
)

const day = temporalir.Timestamp(86400)

func main() {
	rng := rand.New(rand.NewSource(11))
	b := temporalir.NewBuilder()

	common := []string{"report", "update", "summary", "notes"}
	niche := []string{"eclipse", "solstice", "aurora", "comet", "meteor"}

	// A year of documents; most carry only common terms, a few also a
	// niche astronomy term. Lifespans vary from a day to a quarter.
	for i := 0; i < 8000; i++ {
		start := temporalir.Timestamp(rng.Int63n(int64(365 * day)))
		life := day + temporalir.Timestamp(rng.Int63n(int64(90*day)))
		terms := []string{common[rng.Intn(len(common))], common[rng.Intn(len(common))]}
		if rng.Intn(10) == 0 {
			terms = append(terms, niche[rng.Intn(len(niche))])
		}
		b.Add(start, start+life, terms...)
	}

	engine, err := b.Build(temporalir.IRHintPerf, temporalir.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// All March documents mentioning "report": potentially hundreds.
	march := 59 * day
	all := engine.Search(march, march+31*day, "report")
	fmt.Printf("March documents mentioning 'report': %d\n", len(all))

	// Top-5 by relevance: rare conjunctions and strong temporal overlap
	// float to the top.
	top := engine.SearchTopK(march, march+31*day, 5, "report", "aurora")
	fmt.Printf("top %d for report+aurora:\n", len(top))
	for rank, r := range top {
		iv, terms, _ := engine.Object(r.ID)
		fmt.Printf("  #%d doc %d  score %.3f  alive days %d..%d  terms %v\n",
			rank+1, r.ID, r.Score, iv.Start/86400, iv.End/86400, terms)
	}

	// Scores respond to term rarity: the same document set queried with
	// only the common term ranks lower.
	commonTop := engine.SearchTopK(march, march+31*day, 1, "report")
	if len(top) > 0 && len(commonTop) > 0 {
		fmt.Printf("best 'report+aurora' score %.3f vs best 'report' score %.3f\n",
			top[0].Score, commonTop[0].Score)
	}
}
