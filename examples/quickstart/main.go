// Quickstart: index a handful of documents with lifespans and run
// time-travel IR queries — the running example of the paper (Figure 1)
// with words instead of abstract elements.
package main

import (
	"fmt"
	"log"

	temporalir "repro"
)

func main() {
	// Build a collection: each Add records a lifespan and the terms
	// describing the object (a document version, a session, a basket...).
	b := temporalir.NewBuilder()
	b.Add(10, 15, "elections", "senate", "results") // o1
	b.Add(2, 5, "elections", "results")             // o2
	b.Add(0, 2, "senate")                           // o3
	b.Add(0, 15, "elections", "senate", "results")  // o4
	b.Add(3, 7, "senate", "results")                // o5
	b.Add(2, 11, "results")                         // o6
	b.Add(4, 14, "elections", "results")            // o7
	b.Add(2, 3, "results")                          // o8

	// Build the paper's headline index, irHINT (performance variant).
	engine, err := b.Build(temporalir.IRHintPerf, temporalir.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// A time-travel IR query: objects alive anywhere in [4, 6] whose
	// description contains BOTH terms.
	ids := engine.Search(4, 6, "elections", "results")
	fmt.Printf("alive in [4,6] mentioning elections+results: %v\n", ids)
	for _, id := range ids {
		iv, terms, _ := engine.Object(id)
		fmt.Printf("  object %d: lifespan %v, terms %v\n", id, iv, terms)
	}

	// Updates: insert a fresh version, delete an old one.
	newID := engine.Insert(5, 9, "elections", "recount")
	fmt.Printf("inserted object %d\n", newID)
	if err := engine.Delete(ids[0]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after update: %v\n", engine.Search(4, 6, "elections", "results"))

	// Every index method returns identical results; pick by the
	// throughput/size/update trade-offs of the paper's Table 5.
	for _, m := range temporalir.Methods() {
		e2, err := b.Build(m, temporalir.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s -> %v (index ~%d bytes)\n",
			m, e2.Search(4, 6, "elections", "results"), e2.SizeBytes())
	}
}
