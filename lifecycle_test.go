package temporalir_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	temporalir "repro"
	"repro/internal/testutil"
)

// TestLifecycleDifferential drives every method through an
// insert/delete/compact interleaving and checks the whole query workload
// against the lifecycle oracle at three points: before compaction, DURING
// compaction (queries racing the rebuild), and after it. External ids are
// stable across the physical rewrite, so all three checksums must equal
// the oracle's.
func TestLifecycleDifferential(t *testing.T) {
	w := testutil.DefaultDifferentialWorkloads()[0]
	c := testutil.RandomCollection(w.Config)
	queries := w.WorkloadQueries()
	for _, m := range allMethods() {
		m := m
		t.Run(string(m), func(t *testing.T) {
			eng, err := temporalir.EngineFromCollection(c, m, temporalir.Options{})
			if err != nil {
				t.Fatalf("EngineFromCollection: %v", err)
			}
			oracle := testutil.NewLifecycleOracle(c)

			// Interleave inserts (terms "e<k>" resolve to existing elem ids
			// via the EngineFromCollection dictionary) with deletes.
			for i := 0; i < 60; i++ {
				if i%3 == 2 {
					victim := temporalir.ObjectID((i * 7) % len(c.Objects))
					if oracle.Delete(victim) {
						if err := eng.Delete(victim); err != nil {
							t.Fatalf("Delete(%d): %v", victim, err)
						}
					}
					continue
				}
				start := temporalir.Timestamp(w.Config.DomainLo + int64(i*37)%(w.Config.DomainHi-w.Config.DomainLo))
				end := start + temporalir.Timestamp(i%40)
				e1 := temporalir.ElemID(i % w.Config.Dict)
				e2 := temporalir.ElemID((i * 3) % w.Config.Dict)
				id := eng.Insert(start, end, fmt.Sprintf("e%d", e1), fmt.Sprintf("e%d", e2))
				oracle.Insert(id, temporalir.NewInterval(start, end), []temporalir.ElemID{e1, e2})
			}

			wantSum := testutil.WorkloadChecksum(oracle.QueryAll(queries))
			if got := checksumEngine(t, eng, queries); got != wantSum {
				t.Fatalf("pre-compaction checksum mismatch: %s != %s", got, wantSum)
			}

			// Compact with queries in flight: every concurrent batch must
			// itself be oracle-identical, whichever generation it lands on
			// (no mutations are running, only the physical rewrite).
			var wg sync.WaitGroup
			stop := make(chan struct{})
			errs := make(chan string, 8)
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						rows := make([][]temporalir.ObjectID, len(queries))
						for i, res := range eng.SearchBatch(queries) {
							rows[i] = res.IDs
						}
						if got := testutil.WorkloadChecksum(rows); got != wantSum {
							select {
							case errs <- got:
							default:
							}
							return
						}
					}
				}()
			}
			if _, err := eng.Compact(context.Background()); err != nil {
				t.Fatalf("Compact: %v", err)
			}
			close(stop)
			wg.Wait()
			select {
			case got := <-errs:
				t.Fatalf("mid-compaction checksum mismatch: %s != %s", got, wantSum)
			default:
			}

			if got := checksumEngine(t, eng, queries); got != wantSum {
				t.Fatalf("post-compaction checksum mismatch: %s != %s", got, wantSum)
			}
			if eng.Len() != oracle.Len() {
				t.Fatalf("Len = %d, oracle %d", eng.Len(), oracle.Len())
			}
			if st := eng.CompactStats(); st.Tombstones != 0 || st.MemObjects != 0 {
				t.Fatalf("compaction left residue: %+v", st)
			}
		})
	}
}

// TestLifecycleSaveRoundTrip checks Save serializes a consistent
// generation mid-lifecycle: the loaded engine answers exactly like the
// (tombstone-filtered, memtable-inclusive) original — modulo the dense
// re-assignment of ids that Save documents.
func TestLifecycleSaveRoundTrip(t *testing.T) {
	w := testutil.DefaultDifferentialWorkloads()[1]
	c := testutil.RandomCollection(w.Config)
	queries := w.WorkloadQueries()
	eng, err := temporalir.EngineFromCollection(c, temporalir.IRHintSize, temporalir.Options{})
	if err != nil {
		t.Fatalf("EngineFromCollection: %v", err)
	}
	for i := 0; i < 30; i++ {
		if i%2 == 0 {
			eng.Delete(temporalir.ObjectID(i))
		} else {
			eng.Insert(temporalir.Timestamp(w.Config.DomainLo+int64(i)), temporalir.Timestamp(w.Config.DomainLo+int64(i+20)), fmt.Sprintf("e%d", i%w.Config.Dict))
		}
	}

	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := temporalir.LoadEngine(&buf, temporalir.IRHintSize, temporalir.Options{})
	if err != nil {
		t.Fatalf("LoadEngine: %v", err)
	}
	if loaded.Len() != eng.Len() {
		t.Fatalf("loaded Len = %d, want %d", loaded.Len(), eng.Len())
	}
	// Ids shift on load (dense re-assignment), so compare result-set
	// SIZES per query, plus the interval+terms multiset via Object.
	for i, q := range queries {
		a := eng.SearchBatch([]temporalir.Query{q})[0].IDs
		b := loaded.SearchBatch([]temporalir.Query{q})[0].IDs
		if len(a) != len(b) {
			t.Fatalf("query %d: live engine %d rows, loaded %d", i, len(a), len(b))
		}
	}
}
