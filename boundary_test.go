package temporalir_test

import (
	"testing"

	temporalir "repro"
	"repro/internal/bruteforce"
	"repro/internal/model"
	"repro/internal/testutil"
)

// TestBoundarySemanticsAllMethods is the boundary sweep as a standalone
// suite: every method must agree with the oracle — and therefore with
// every other method — on point queries (start == end), intervals
// touching the domain edges 0 and 2^m-1 of the discretized grid, unknown
// elements, and empty element lists. The same sweep also rides inside
// every differential workload; this test pins the semantics on a corpus
// built to sit exactly on the grid edges.
func TestBoundarySemanticsAllMethods(t *testing.T) {
	// A power-of-two domain [0, 2^9-1] so the HINT grid aligns exactly
	// with the domain edges and the last cell is 2^m-1.
	const hi = 1<<9 - 1
	cfg := testutil.CollectionConfig{N: 300, DomainLo: 0, DomainHi: hi, Dict: 16, MaxDesc: 5, Seed: 501}
	c := testutil.RandomCollection(cfg)
	// Pin objects exactly on the edges: alive only at 0, only at hi,
	// spanning the whole domain, and straddling each edge's first cell.
	edge := []struct {
		s, e  temporalir.Timestamp
		elems []temporalir.ElemID
	}{
		{0, 0, []temporalir.ElemID{0}},
		{hi, hi, []temporalir.ElemID{0}},
		{0, hi, []temporalir.ElemID{1}},
		{0, 1, []temporalir.ElemID{2}},
		{hi - 1, hi, []temporalir.ElemID{2}},
	}
	for _, o := range edge {
		c.AppendObject(temporalir.NewInterval(o.s, o.e), o.elems)
	}
	queries := testutil.BoundaryQueries(cfg)
	// Edge-cell point and unit queries on top of the generic sweep.
	queries = append(queries,
		temporalir.Query{Interval: temporalir.NewInterval(0, 0), Elems: []temporalir.ElemID{2}},
		temporalir.Query{Interval: temporalir.NewInterval(hi, hi), Elems: []temporalir.ElemID{2}},
		temporalir.Query{Interval: temporalir.NewInterval(0, 1)},
		temporalir.Query{Interval: temporalir.NewInterval(hi-1, hi)},
	)
	oracle := bruteforce.New(c)
	for _, m := range allMethods() {
		ix, err := temporalir.NewIndex(m, c, temporalir.Options{})
		if err != nil {
			t.Fatalf("building %s: %v", m, err)
		}
		for i, q := range queries {
			got := testutil.Canonical(ix.Query(q))
			want := testutil.Canonical(oracle.Query(q))
			if !model.EqualIDs(got, want) {
				t.Errorf("%s: boundary query %d (%v elems=%v): got %v, want %v",
					m, i, q.Interval, q.Elems, got, want)
			}
		}
	}
}

// TestBoundaryEngineSearch pins the engine-level string surface on the
// same edges: unknown terms make conjunctive results empty, and empty
// term lists select purely on time.
func TestBoundaryEngineSearch(t *testing.T) {
	for _, m := range allMethods() {
		b := temporalir.NewBuilder()
		b.Add(0, 0, "alpha")
		b.Add(9, 9, "alpha", "beta")
		b.Add(0, 9, "gamma")
		eng, err := b.Build(m, temporalir.Options{})
		if err != nil {
			t.Fatalf("building %s: %v", m, err)
		}
		if got := eng.Search(0, 0, "alpha"); len(got) != 1 || got[0] != 0 {
			t.Errorf("%s: point search at 0 = %v, want [0]", m, got)
		}
		if got := eng.Search(9, 9, "alpha"); len(got) != 1 || got[0] != 1 {
			t.Errorf("%s: point search at 9 = %v, want [1]", m, got)
		}
		if got := eng.Search(0, 9, "nosuchterm"); got != nil {
			t.Errorf("%s: unknown term = %v, want nil", m, got)
		}
		if got := eng.Search(0, 9, "alpha", "nosuchterm"); got != nil {
			t.Errorf("%s: known+unknown conjunction = %v, want nil", m, got)
		}
		if got := eng.Search(0, 9); len(got) != 3 {
			t.Errorf("%s: empty term list = %v, want all three", m, got)
		}
	}
}
