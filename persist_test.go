package temporalir

import (
	"bytes"
	"strings"
	"testing"
)

func buildPersistEngine(t *testing.T) *Engine {
	t.Helper()
	b := NewBuilder()
	b.Add(0, 100, "alpha", "beta")
	b.Add(50, 150, "alpha", "gamma")
	b.Add(200, 300, "beta")
	b.Add(120, 180, "gamma", "delta")
	e, err := b.Build(IRHintPerf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSaveLoadRoundTrip(t *testing.T) {
	e := buildPersistEngine(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf, TIFSlicing, Options{Slices: 8})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 4 {
		t.Fatalf("Len = %d", loaded.Len())
	}
	// Same searches, possibly different ids (dense re-assignment) — so
	// compare result counts and retrieved term sets.
	for _, q := range []struct {
		s, e  Timestamp
		terms []string
	}{
		{0, 100, []string{"alpha"}},
		{100, 200, []string{"gamma"}},
		{0, 300, []string{"beta"}},
		{0, 300, []string{"unseen"}},
	} {
		a := e.Search(q.s, q.e, q.terms...)
		b := loaded.Search(q.s, q.e, q.terms...)
		if len(a) != len(b) {
			t.Fatalf("search %v: %d vs %d results", q.terms, len(a), len(b))
		}
	}
	// Terms survive with their strings.
	iv, terms, err := loaded.Object(loaded.Search(120, 130, "delta")[0])
	if err != nil || iv != (Interval{Start: 120, End: 180}) {
		t.Fatalf("Object after load: %v %v %v", iv, terms, err)
	}
	if strings.Join(terms, ",") != "gamma,delta" && strings.Join(terms, ",") != "delta,gamma" {
		t.Errorf("terms after load: %v", terms)
	}
	// The loaded engine keeps working for updates.
	loaded.Insert(400, 500, "alpha", "epsilon")
	if got := loaded.Search(450, 460, "epsilon"); len(got) != 1 {
		t.Errorf("insert after load: %v", got)
	}
}

func TestSaveFoldsDeletions(t *testing.T) {
	e := buildPersistEngine(t)
	victim := e.Search(0, 100, "alpha", "beta")[0]
	if err := e.Delete(victim); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf, IRHintPerf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 3 {
		t.Fatalf("Len after folded delete = %d, want 3", loaded.Len())
	}
	if got := loaded.Search(0, 100, "alpha", "beta"); len(got) != 0 {
		t.Errorf("deleted object resurrected: %v", got)
	}
	// The other alpha object survives.
	if got := loaded.Search(0, 150, "alpha"); len(got) != 1 {
		t.Errorf("surviving object lost: %v", got)
	}
}

func TestLoadEngineValidation(t *testing.T) {
	if _, err := LoadEngine(bytes.NewReader([]byte("XXXX")), TIF, Options{}); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := LoadEngine(bytes.NewReader(append([]byte("TIRE"), 99)), TIF, Options{}); err == nil {
		t.Error("bad version accepted")
	}
	e := buildPersistEngine(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{4, 6, len(data) / 2} {
		if _, err := LoadEngine(bytes.NewReader(data[:cut]), TIF, Options{}); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := LoadEngine(bytes.NewReader(data), "nope", Options{}); err == nil {
		t.Error("unknown method accepted at load")
	}
}

func TestSaveLoadEmptyEngine(t *testing.T) {
	b := NewBuilder()
	e, err := b.Build(TIF, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf, TIF, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 {
		t.Errorf("Len = %d", loaded.Len())
	}
}
