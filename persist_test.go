package temporalir

import (
	"bytes"
	"strings"
	"testing"
)

func buildPersistEngine(t *testing.T) *Engine {
	t.Helper()
	b := NewBuilder()
	b.Add(0, 100, "alpha", "beta")
	b.Add(50, 150, "alpha", "gamma")
	b.Add(200, 300, "beta")
	b.Add(120, 180, "gamma", "delta")
	e, err := b.Build(IRHintPerf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSaveLoadRoundTrip(t *testing.T) {
	e := buildPersistEngine(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf, TIFSlicing, Options{Slices: 8})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 4 {
		t.Fatalf("Len = %d", loaded.Len())
	}
	// Same searches, possibly different ids (dense re-assignment) — so
	// compare result counts and retrieved term sets.
	for _, q := range []struct {
		s, e  Timestamp
		terms []string
	}{
		{0, 100, []string{"alpha"}},
		{100, 200, []string{"gamma"}},
		{0, 300, []string{"beta"}},
		{0, 300, []string{"unseen"}},
	} {
		a := e.Search(q.s, q.e, q.terms...)
		b := loaded.Search(q.s, q.e, q.terms...)
		if len(a) != len(b) {
			t.Fatalf("search %v: %d vs %d results", q.terms, len(a), len(b))
		}
	}
	// Terms survive with their strings.
	iv, terms, err := loaded.Object(loaded.Search(120, 130, "delta")[0])
	if err != nil || iv != (Interval{Start: 120, End: 180}) {
		t.Fatalf("Object after load: %v %v %v", iv, terms, err)
	}
	if strings.Join(terms, ",") != "gamma,delta" && strings.Join(terms, ",") != "delta,gamma" {
		t.Errorf("terms after load: %v", terms)
	}
	// The loaded engine keeps working for updates.
	loaded.Insert(400, 500, "alpha", "epsilon")
	if got := loaded.Search(450, 460, "epsilon"); len(got) != 1 {
		t.Errorf("insert after load: %v", got)
	}
}

func TestSaveFoldsDeletions(t *testing.T) {
	e := buildPersistEngine(t)
	victim := e.Search(0, 100, "alpha", "beta")[0]
	if err := e.Delete(victim); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf, IRHintPerf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 3 {
		t.Fatalf("Len after folded delete = %d, want 3", loaded.Len())
	}
	if got := loaded.Search(0, 100, "alpha", "beta"); len(got) != 0 {
		t.Errorf("deleted object resurrected: %v", got)
	}
	// The other alpha object survives.
	if got := loaded.Search(0, 150, "alpha"); len(got) != 1 {
		t.Errorf("surviving object lost: %v", got)
	}
}

func TestLoadEngineValidation(t *testing.T) {
	if _, err := LoadEngine(bytes.NewReader([]byte("XXXX")), TIF, Options{}); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := LoadEngine(bytes.NewReader(append([]byte("TIRE"), 99)), TIF, Options{}); err == nil {
		t.Error("bad version accepted")
	}
	e := buildPersistEngine(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{4, 6, len(data) / 2} {
		if _, err := LoadEngine(bytes.NewReader(data[:cut]), TIF, Options{}); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := LoadEngine(bytes.NewReader(data), "nope", Options{}); err == nil {
		t.Error("unknown method accepted at load")
	}
}

func TestSaveLoadPreservesIdentity(t *testing.T) {
	e := buildPersistEngine(t)
	// Grow past the built prefix and punch a hole mid-range so the
	// external-id table is no longer the identity mapping.
	id4 := e.Insert(400, 500, "epsilon")
	id5 := e.Insert(600, 700, "zeta")
	victim := e.Search(50, 60, "gamma") // object 1
	if len(victim) != 1 {
		t.Fatalf("victim lookup: %v", victim)
	}
	if err := e.Delete(victim[0]); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf, IRHintPerf, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Every surviving external id resolves to the same object on both
	// engines — ids are stable across the round trip.
	for _, id := range []ObjectID{0, 2, 3, id4, id5} {
		iv1, t1, err1 := e.Object(id)
		iv2, t2, err2 := loaded.Object(id)
		if err1 != nil || err2 != nil {
			t.Fatalf("object %d: %v / %v", id, err1, err2)
		}
		if iv1 != iv2 || strings.Join(t1, ",") != strings.Join(t2, ",") {
			t.Errorf("object %d diverged: %v %v vs %v %v", id, iv1, t1, iv2, t2)
		}
	}
	// The deleted id stays deleted, not reassigned to a neighbor.
	if _, _, err := loaded.Object(victim[0]); err == nil {
		t.Errorf("deleted id %d resurrected after load", victim[0])
	}
	// The id sequence continues exactly where the original would: a
	// post-load insert gets the same id on both engines.
	want := e.Insert(800, 900, "eta")
	got := loaded.Insert(800, 900, "eta")
	if got != want {
		t.Errorf("next id after load = %d, want %d", got, want)
	}
}

func TestSaveLoadIdentityAcrossCompaction(t *testing.T) {
	e := buildPersistEngine(t)
	keep := e.Insert(400, 500, "epsilon")
	victims := e.Search(0, 300, "beta") // objects 0 and 2
	for _, v := range victims {
		if err := e.Delete(v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Compact(t.Context()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf, TIFSlicing, Options{Slices: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := loaded.Object(keep); err != nil {
		t.Errorf("id %d lost across compaction+round-trip: %v", keep, err)
	}
	if want, got := e.Insert(800, 900, "eta"), loaded.Insert(800, 900, "eta"); got != want {
		t.Errorf("next id after compaction+load = %d, want %d", got, want)
	}
}

func TestLoadEngineAcceptsV1(t *testing.T) {
	// A version-1 snapshot is the v2 layout minus the identity section;
	// synthesize one by re-stamping the version byte on a fresh save (the
	// trailing identity bytes are simply never read on the v1 path).
	e := buildPersistEngine(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if data[4] != engineVersion {
		t.Fatalf("version byte = %d", data[4])
	}
	data[4] = engineVersionV1
	loaded, err := LoadEngine(bytes.NewReader(data), IRHintPerf, Options{})
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if loaded.Len() != 4 {
		t.Fatalf("Len = %d", loaded.Len())
	}
	// v1 falls back to dense identity ids.
	for i := 0; i < 4; i++ {
		if _, _, err := loaded.Object(ObjectID(i)); err != nil {
			t.Errorf("dense id %d missing after v1 load: %v", i, err)
		}
	}
	if got := loaded.Insert(800, 900, "eta"); got != 4 {
		t.Errorf("v1 next id = %d, want 4", got)
	}
}

func TestLoadEngineRejectsCorruptIdentity(t *testing.T) {
	e := buildPersistEngine(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Truncate inside the identity section (the last byte is the
	// next-id uvarint; dropping it must be detected).
	if _, err := LoadEngine(bytes.NewReader(data[:len(data)-1]), TIF, Options{}); err == nil {
		t.Error("truncated identity section accepted")
	}
}

func TestSaveLoadEmptyEngine(t *testing.T) {
	b := NewBuilder()
	e, err := b.Build(TIF, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf, TIF, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 {
		t.Errorf("Len = %d", loaded.Len())
	}
}
