//go:build !invariants

package temporalir

import "sync"

// engineInvariantsEnabled reports whether the engine's runtime assertion
// layer is compiled in. See engine_invariants_on.go.
const engineInvariantsEnabled = false

// assertEngineLocked is a no-op in normal builds: it inlines to nothing,
// so the lock-contract checks cost nothing on hot query paths.
func assertEngineLocked(*sync.RWMutex, string) {}
